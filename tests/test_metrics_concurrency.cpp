// Scrape-vs-update safety of MetricsRegistry: writers hammer
// counters, gauges and streaming histograms from many threads while a
// scraper thread repeatedly snapshots and renders the registry.
// Nothing here asserts timing — the point is that ThreadSanitizer
// (the CI tsan job runs MetricsConcurrency*) sees no race, and that
// commutative updates survive the contention bit-exactly.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics_registry.hpp"
#include "telemetry/prometheus.hpp"

namespace {

using namespace ppo;

TEST(MetricsConcurrency, CountersSurviveConcurrentScrapes) {
  obs::MetricsRegistry registry;
  constexpr int kWriters = 4;
  constexpr int kIncrements = 5000;
  std::atomic<bool> done{false};

  std::thread scraper([&] {
    std::size_t renders = 0;
    while (!done.load(std::memory_order_acquire)) {
      const auto snap = registry.snapshot();
      const std::string text = telemetry::render_prometheus(snap);
      EXPECT_FALSE(text.empty() && !snap.empty());
      ++renders;
    }
    EXPECT_GT(renders, 0u);
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&registry, w] {
      const obs::MetricDims dims{{"writer", std::to_string(w)}};
      for (int i = 0; i < kIncrements; ++i) {
        registry.add_counter("shared_total", 1);
        registry.add_counter("per_writer_total", 1, dims);
        registry.set_gauge("last_i", static_cast<double>(i), dims);
      }
    });
  }
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  scraper.join();

  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("shared_total"),
            static_cast<std::uint64_t>(kWriters * kIncrements));
  for (int w = 0; w < kWriters; ++w)
    EXPECT_EQ(snap.counters.at("per_writer_total{writer=" +
                               std::to_string(w) + "}"),
              static_cast<std::uint64_t>(kIncrements));
}

TEST(MetricsConcurrency, StreamingObservationsUnderScrape) {
  obs::MetricsRegistry registry;
  constexpr int kWriters = 4;
  constexpr int kObservations = 4000;
  std::atomic<bool> done{false};

  std::thread scraper([&] {
    while (!done.load(std::memory_order_acquire)) {
      const auto snap = registry.snapshot();
      for (const auto& [key, hist] : snap.streaming) {
        (void)key;
        // A torn snapshot could show quantiles wildly outside the
        // observed range; the lock-free buckets must never do that.
        if (hist.count > 0) {
          EXPECT_GE(hist.quantile(1.0), 0.001);
          EXPECT_LE(hist.quantile(0.0), 16.0 * 1.1);
        }
      }
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&registry] {
      for (int i = 0; i < kObservations; ++i)
        registry.observe("latency_seconds",
                         0.001 * static_cast<double>(1 + (i % 16000)));
    });
  }
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  scraper.join();

  const auto snap = registry.snapshot();
  const auto& hist = snap.streaming.at("latency_seconds");
  EXPECT_EQ(hist.count, static_cast<std::uint64_t>(kWriters * kObservations));
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : hist.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, hist.count);  // no lost or double increments
}

TEST(MetricsConcurrency, LiveRegistryInstallDuringObservation) {
  // The call-site pattern: observers load the live pointer and write
  // through it while another thread installs/uninstalls. The pointer
  // swap must be race-free and observers must tolerate nullptr.
  obs::MetricsRegistry registry;
  std::atomic<bool> done{false};

  std::thread installer([&] {
    for (int i = 0; i < 500; ++i) {
      obs::install_live_metrics(&registry);
      obs::uninstall_live_metrics();
    }
    obs::install_live_metrics(&registry);
    done.store(true, std::memory_order_release);
  });

  std::uint64_t attempted = 0;
  while (!done.load(std::memory_order_acquire)) {
    if (auto* live = obs::live_metrics()) {
      live->observe("maybe_live", 1.0);
      ++attempted;
    }
  }
  installer.join();
  obs::uninstall_live_metrics();
  const auto snap = registry.snapshot();
  if (attempted > 0) {
    EXPECT_EQ(snap.streaming.at("maybe_live").count, attempted);
  }
}

}  // namespace
