// RunningStats / Histogram / percentile behaviour.
#include <gtest/gtest.h>

#include "common/histogram.hpp"
#include "common/check.hpp"
#include "common/stats.hpp"

namespace ppo {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsSafe) {
  const RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesCombinedStream) {
  RunningStats a, b, combined;
  for (int i = 0; i < 100; ++i) {
    const double x = i * 0.37;
    combined.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Percentile, InterpolatesBetweenOrderStatistics) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.99), 7.0);
}

TEST(Percentile, RejectsEmptyAndBadQ) {
  EXPECT_THROW(percentile({}, 0.5), CheckError);
  EXPECT_THROW(percentile({1.0}, 1.5), CheckError);
}

TEST(ChiSquare, UniformCountsScoreLow) {
  EXPECT_DOUBLE_EQ(chi_square_uniform({100, 100, 100, 100}), 0.0);
  EXPECT_GT(chi_square_uniform({400, 0, 0, 0}), 100.0);
}

TEST(Histogram, CountsAndMean) {
  Histogram h;
  h.add(1);
  h.add(2, 3);
  h.add(10);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(2), 3u);
  EXPECT_EQ(h.count(7), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), (1.0 + 6.0 + 10.0) / 5.0);
  EXPECT_EQ(h.min_value(), 1u);
  EXPECT_EQ(h.max_value(), 10u);
}

TEST(Histogram, BinsSorted) {
  Histogram h;
  h.add(5);
  h.add(1);
  h.add(3);
  const auto bins = h.bins();
  ASSERT_EQ(bins.size(), 3u);
  EXPECT_EQ(bins[0].first, 1u);
  EXPECT_EQ(bins[1].first, 3u);
  EXPECT_EQ(bins[2].first, 5u);
}

TEST(Histogram, Quantiles) {
  Histogram h;
  for (std::size_t v = 1; v <= 100; ++v) h.add(v);
  EXPECT_EQ(h.quantile(0.0), 1u);
  EXPECT_NEAR(static_cast<double>(h.quantile(0.5)), 50.0, 1.0);
  EXPECT_EQ(h.quantile(1.0), 100u);
}

TEST(Histogram, EmptyGuards) {
  const Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_THROW(h.quantile(0.5), CheckError);
  EXPECT_THROW(h.min_value(), CheckError);
}

}  // namespace
}  // namespace ppo
