// Spectral-gap estimation sanity on graphs with known expansion.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/spectral.hpp"

namespace ppo::graph {
namespace {

TEST(Spectral, CompleteGraphHasKnownLambda2) {
  // K_n normalized adjacency: lambda_2 = 1/(n-1) in absolute value.
  const Graph g = complete(20);
  Rng rng(1);
  EXPECT_NEAR(second_eigenvalue_estimate(g, rng, 400), 1.0 / 19.0, 0.01);
}

TEST(Spectral, RingHasTinyGap) {
  // Cycle C_n: lambda_2 = cos(2*pi/n), close to 1 for large n.
  const Graph g = ring(100);
  Rng rng(2);
  const double lambda = second_eigenvalue_estimate(g, rng, 600);
  EXPECT_GT(lambda, 0.97);
}

TEST(Spectral, RandomGraphExpandsBetterThanRing) {
  Rng grng(3);
  const Graph random_g = erdos_renyi_gnm(100, 600, grng);
  const Graph ring_g = ring(100);
  Rng r1(4), r2(4);
  EXPECT_GT(spectral_gap(random_g, r1, 400), spectral_gap(ring_g, r2, 400) + 0.2);
}

TEST(Spectral, DegenerateInputs) {
  Rng rng(5);
  EXPECT_DOUBLE_EQ(second_eigenvalue_estimate(Graph(1), rng), 0.0);
  EXPECT_DOUBLE_EQ(second_eigenvalue_estimate(Graph(5), rng), 0.0);
}

}  // namespace
}  // namespace ppo::graph
