// Dynamic membership extension: users joining a running system via
// invitations (§II-B notes additions raise no privacy concerns; the
// paper's evaluation keeps the graph static, we implement the growth).
#include <gtest/gtest.h>

#include "churn/churn_model.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "overlay/service.hpp"
#include "sim/simulator.hpp"

namespace ppo::overlay {
namespace {

struct Fixture {
  sim::Simulator sim;
  graph::Graph trust;
  churn::ExponentialChurn model;
  OverlayService service;

  explicit Fixture(std::size_t n, double alpha = 1.0, std::uint64_t seed = 5)
      : trust([&] {
          Rng g(seed);
          return graph::barabasi_albert(n, 2, g);
        }()),
        model(churn::ExponentialChurn::from_availability(alpha, 30.0)),
        service(sim, trust, model,
                {.params = {.cache_size = 60,
                            .shuffle_length = 8,
                            .target_links = 12}},
                Rng(seed + 1)) {}
};

TEST(Membership, JoinBeforeStartThrows) {
  Fixture fx(20);
  EXPECT_THROW(fx.service.add_member({0}), CheckError);
}

TEST(Membership, JoinRequiresValidInviters) {
  Fixture fx(20);
  fx.service.start();
  EXPECT_THROW(fx.service.add_member({}), CheckError);
  EXPECT_THROW(fx.service.add_member({99}), CheckError);
}

TEST(Membership, JoinerGetsIdAndMutualTrustEdges) {
  Fixture fx(20);
  fx.service.start();
  fx.sim.run_until(5.0);
  const NodeId v = fx.service.add_member({3, 7, 3});  // dup inviter ok
  EXPECT_EQ(v, 20u);
  EXPECT_EQ(fx.service.num_nodes(), 21u);
  EXPECT_TRUE(fx.service.trust_graph().has_edge(v, 3));
  EXPECT_TRUE(fx.service.trust_graph().has_edge(v, 7));
  EXPECT_EQ(fx.service.node(v).trust_degree(), 2u);
  // The inviters' link sets grew too.
  const auto& inviter_links = fx.service.node(3).trusted_links();
  EXPECT_NE(std::find(inviter_links.begin(), inviter_links.end(), v),
            inviter_links.end());
  // The joiner is online (its join moment) with a fresh pseudonym.
  EXPECT_TRUE(fx.service.is_online(v));
  EXPECT_TRUE(fx.service.node(v).own_pseudonym().has_value());
}

TEST(Membership, JoinerIntegratesIntoOverlay) {
  Fixture fx(40);
  fx.service.start();
  fx.sim.run_until(30.0);
  const NodeId v = fx.service.add_member({0});
  fx.sim.run_until(60.0);
  // The joiner built pseudonym links well beyond its single inviter.
  EXPECT_GE(fx.service.node(v).out_degree(), 6u);
  // Others have begun linking back to it (its pseudonym circulated).
  graph::Graph snapshot = fx.service.overlay_snapshot();
  EXPECT_TRUE(graph::is_connected(snapshot));
  EXPECT_GE(snapshot.degree(v), fx.service.node(v).out_degree());
}

TEST(Membership, GrowthUnderChurnStaysConnected) {
  Fixture fx(40, 0.6, 9);
  fx.service.start();
  fx.sim.run_until(50.0);
  Rng rng(33);
  for (int joiner = 0; joiner < 30; ++joiner) {
    // Each newcomer is invited by 1-3 random existing members.
    std::vector<NodeId> inviters;
    const std::size_t k = 1 + rng.uniform_u64(3);
    for (std::size_t i = 0; i < k; ++i)
      inviters.push_back(static_cast<NodeId>(
          rng.uniform_u64(fx.service.num_nodes())));
    fx.service.add_member(inviters);
    fx.sim.run_until(fx.sim.now() + 3.0);
  }
  EXPECT_EQ(fx.service.num_nodes(), 70u);
  fx.sim.run_until(fx.sim.now() + 100.0);

  graph::Graph snapshot = fx.service.overlay_snapshot();
  const double disc =
      graph::fraction_disconnected(snapshot, fx.service.online_mask());
  EXPECT_LT(disc, 0.12);
  // Metrics plumbing follows the growth.
  EXPECT_EQ(fx.service.online_mask().size(), 70u);
  EXPECT_EQ(snapshot.num_nodes(), 70u);
}

TEST(Membership, GroupChatSpansNewMembers) {
  // A member that joins AFTER a post still receives it (anti-entropy
  // has no member list — version vectors grow with the population).
  Fixture fx(30);
  fx.service.start();
  fx.sim.run_until(20.0);
  const NodeId v = fx.service.add_member({1, 2});
  fx.sim.run_until(40.0);
  EXPECT_GE(fx.service.current_peers(v).size(), 2u);
}

}  // namespace
}  // namespace ppo::overlay
