// Brahms-style slot sampler (§III-D-2): the replacement rule, the
// expiry/refill accounting behind Figure 9, and the key uniformity
// property — samples are unbiased even under skewed receive rates.
#include <gtest/gtest.h>

#include <map>

#include "overlay/sampler.hpp"

namespace ppo::overlay {
namespace {

PseudonymRecord rec(PseudonymValue v, double expiry = 1000.0) {
  return PseudonymRecord{v, expiry};
}

TEST(Sampler, EmptySlotTakesFirstOffer) {
  Rng rng(1);
  SlotSampler sampler(4, 64, rng);
  sampler.offer(rec(123), 0.0);
  EXPECT_EQ(sampler.live_values(0.0), std::vector<PseudonymValue>{123});
  EXPECT_EQ(sampler.live_slots(0.0), 4u);  // one offer fills every slot
  EXPECT_EQ(sampler.counters().initial_fills, 4u);
  EXPECT_EQ(sampler.counters().replacements(), 0u);
}

TEST(Sampler, CloserValueDisplaces) {
  Rng rng(2);
  SlotSampler sampler(1, 64, rng);
  const auto [reference, empty] = sampler.slot(0);
  ASSERT_FALSE(empty.has_value());

  // Offer a far value, then a strictly closer one.
  const PseudonymValue far =
      reference > (1ull << 62) ? reference - (1ull << 40) : reference + (1ull << 40);
  const PseudonymValue near =
      reference > (1ull << 62) ? reference - 1000 : reference + 1000;
  sampler.offer(rec(far), 0.0);
  sampler.offer(rec(near), 0.0);
  EXPECT_EQ(sampler.slot(0).second->value, near);
  EXPECT_EQ(sampler.counters().better_displacements, 1u);

  // Re-offering the far one changes nothing.
  sampler.offer(rec(far), 0.0);
  EXPECT_EQ(sampler.slot(0).second->value, near);
  EXPECT_EQ(sampler.counters().better_displacements, 1u);
}

TEST(Sampler, TieBrokenByLaterExpiry) {
  Rng rng(3);
  SlotSampler sampler(1, 64, rng);
  const auto reference = sampler.slot(0).first;
  // Two values equidistant from the reference on either side.
  ASSERT_GT(reference, 1000u);
  const PseudonymValue below = reference - 100;
  const PseudonymValue above = reference + 100;
  sampler.offer(rec(below, 50.0), 0.0);
  sampler.offer(rec(above, 80.0), 0.0);  // same distance, later expiry
  EXPECT_EQ(sampler.slot(0).second->value, above);
  sampler.offer(rec(below, 60.0), 0.0);  // earlier expiry: rejected
  EXPECT_EQ(sampler.slot(0).second->value, above);
}

TEST(Sampler, ExpiredContentCountsAsEmptyAndRefillIsReplacement) {
  Rng rng(4);
  SlotSampler sampler(3, 64, rng);
  sampler.offer(rec(1, 10.0), 0.0);
  EXPECT_EQ(sampler.live_slots(5.0), 3u);
  EXPECT_EQ(sampler.live_slots(10.0), 0u);  // lazily expired

  sampler.offer(rec(2, 100.0), /*now=*/20.0);
  EXPECT_EQ(sampler.live_slots(20.0), 3u);
  EXPECT_EQ(sampler.counters().refills_after_expiry, 3u);
  EXPECT_EQ(sampler.counters().initial_fills, 3u);
}

TEST(Sampler, PurgeExpiredMarksVacated) {
  Rng rng(5);
  SlotSampler sampler(2, 64, rng);
  sampler.offer(rec(1, 10.0), 0.0);
  sampler.purge_expired(15.0);
  EXPECT_EQ(sampler.live_slots(15.0), 0u);
  sampler.offer(rec(2, 100.0), 15.0);
  EXPECT_EQ(sampler.counters().refills_after_expiry, 2u);
}

TEST(Sampler, ExpiredOffersIgnored) {
  Rng rng(6);
  SlotSampler sampler(2, 64, rng);
  sampler.offer(rec(1, 10.0), /*now=*/20.0);
  EXPECT_EQ(sampler.live_slots(20.0), 0u);
}

TEST(Sampler, SameValueReofferRefreshesExpiryWithoutCounting) {
  Rng rng(7);
  SlotSampler sampler(1, 64, rng);
  sampler.offer(rec(5, 50.0), 0.0);
  sampler.offer(rec(5, 70.0), 0.0);
  EXPECT_DOUBLE_EQ(sampler.slot(0).second->expiry, 70.0);
  EXPECT_EQ(sampler.counters().replacements(), 0u);
}

TEST(Sampler, LiveValuesDeduplicatesAcrossSlots) {
  Rng rng(8);
  SlotSampler sampler(10, 64, rng);
  sampler.offer(rec(42), 0.0);
  EXPECT_EQ(sampler.live_values(0.0).size(), 1u);
}

TEST(Sampler, ZeroSlotsIsValidHubConfiguration) {
  Rng rng(9);
  SlotSampler sampler(0, 64, rng);
  sampler.offer(rec(1), 0.0);
  EXPECT_TRUE(sampler.live_values(0.0).empty());
  EXPECT_EQ(sampler.counters().replacements(), 0u);
}

// The Brahms property: the sampled pseudonym converges to a uniform
// choice over all DISTINCT offered values, even when some values are
// offered orders of magnitude more often than others.
TEST(Sampler, UniformDespiteSkewedOfferRates) {
  Rng meta_rng(10);
  std::map<PseudonymValue, std::size_t> wins;
  const std::size_t kUniverse = 16;
  const int kTrials = 3000;
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(1000 + static_cast<std::uint64_t>(trial));
    SlotSampler sampler(1, 64, rng);
    // Values sit at odd multiples of 2^59: evenly spaced with equal
    // closeness basins (incl. the half-basin tails at both ends), so
    // a uniform reference value must pick each with probability 1/16.
    // Value #v is offered (v+1)^2 times — heavy skew in receive rate.
    std::vector<PseudonymRecord> offers;
    for (PseudonymValue v = 0; v < kUniverse; ++v)
      for (PseudonymValue k = 0; k < (v + 1) * (v + 1); ++k)
        offers.push_back(rec((2 * v + 1) << 59));
    Rng shuffle_rng = meta_rng.split();
    shuffle_rng.shuffle(offers);
    for (const auto& o : offers) sampler.offer(o, 0.0);
    ++wins[sampler.slot(0).second->value];
  }
  // Every distinct value should win roughly kTrials / kUniverse times.
  const double expected = static_cast<double>(kTrials) / kUniverse;
  EXPECT_EQ(wins.size(), kUniverse);
  double chi2 = 0.0;
  for (const auto& [value, count] : wins) {
    const double d = static_cast<double>(count) - expected;
    chi2 += d * d / expected;
  }
  // 15 dof, 0.001 critical value ~ 37.7; allow margin.
  EXPECT_LT(chi2, 45.0) << "sampler is biased by offer frequency";
}

TEST(Sampler, NaiveModeFillsButNeverDisplaces) {
  Rng rng(11);
  SlotSampler sampler(2, 64, rng);
  sampler.offer_naive(rec(1), 0.0, rng);
  sampler.offer_naive(rec(2), 0.0, rng);
  sampler.offer_naive(rec(3), 0.0, rng);  // both slots full: dropped
  const auto values = sampler.live_values(0.0);
  EXPECT_EQ(values.size(), 2u);
  EXPECT_EQ(sampler.counters().better_displacements, 0u);
}

class SamplerSlotSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SamplerSlotSweep, LiveSlotsNeverExceedCapacity) {
  const std::size_t slots = GetParam();
  Rng rng(12 + slots);
  SlotSampler sampler(slots, 64, rng);
  for (int i = 0; i < 200; ++i)
    sampler.offer(rec(rng.next_u64(), 100.0 + i), 0.0);
  EXPECT_LE(sampler.live_values(0.0).size(), slots);
  EXPECT_EQ(sampler.live_slots(0.0), slots);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SamplerSlotSweep,
                         ::testing::Values(1u, 2u, 8u, 50u));

}  // namespace
}  // namespace ppo::overlay
