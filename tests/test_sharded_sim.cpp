// Sharded simulation core: canonical cross-shard ordering, the
// lookahead contract, external scheduling rules, window-boundary
// semantics, and K-invariance of a randomized event storm.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "sim/sharded_simulator.hpp"

namespace ppo::sim {
namespace {

ShardedSimulator::Options options(std::size_t shards, std::size_t actors,
                                  double lookahead = 1.0) {
  ShardedSimulator::Options o;
  o.shards = shards;
  o.num_actors = actors;
  o.lookahead = lookahead;
  return o;
}

TEST(ShardedSim, ValidatesOptions) {
  EXPECT_THROW(ShardedSimulator(options(0, 4)), CheckError);
  EXPECT_THROW(ShardedSimulator(options(2, 0)), CheckError);
  EXPECT_THROW(ShardedSimulator(options(2, 4, 0.0)), CheckError);
}

TEST(ShardedSim, ShardOfIsStableAndInRange) {
  for (ActorId a = 0; a < 64; ++a) {
    const std::size_t s = ShardedSimulator::shard_of(a, 4);
    EXPECT_LT(s, 4u);
    EXPECT_EQ(s, ShardedSimulator::shard_of(a, 4));  // stable
  }
  EXPECT_EQ(ShardedSimulator::shard_of(17, 1), 0u);
}

TEST(ShardedSim, RejectsExternalScheduleWithoutActor) {
  ShardedSimulator sim(options(2, 8));
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), CheckError);
  // With an explicit actor the external path works.
  bool ran = false;
  sim.schedule_at_for(3, 0.5, [&ran] { ran = true; });
  sim.run_until(1.0);
  EXPECT_TRUE(ran);
}

// All origins (spread over 4 shards) send to ONE target at the same
// instant; the target's shard must deliver them in canonical (time,
// origin, seq) order no matter which worker produced them.
TEST(ShardedSim, MailboxDrainRealizesCanonicalOrder) {
  const std::size_t n = 16;
  ShardedSimulator sim(options(4, n));
  std::vector<std::pair<ActorId, int>> order;

  for (ActorId v = 0; v < n; ++v) {
    sim.schedule_at_for(v, 0.25, [&sim, &order, v] {
      // Two messages per origin, equal delivery time: within an
      // origin the sequence number breaks the tie.
      sim.schedule_at_for(0, 1.5, [&order, v] { order.emplace_back(v, 0); });
      sim.schedule_at_for(0, 1.5, [&order, v] { order.emplace_back(v, 1); });
    });
  }
  sim.run_until(3.0);

  ASSERT_EQ(order.size(), 2 * n);
  for (ActorId v = 0; v < n; ++v) {
    EXPECT_EQ(order[2 * v], std::make_pair(v, 0));
    EXPECT_EQ(order[2 * v + 1], std::make_pair(v, 1));
  }
}

TEST(ShardedSim, CrossShardSendInsideWindowViolatesLookahead) {
  const std::size_t n = 8;
  ShardedSimulator sim(options(2, n));
  // Find a pair of actors on different shards.
  ActorId src = 0, dst = 0;
  for (ActorId v = 1; v < n; ++v) {
    if (sim.shard_of(v) != sim.shard_of(src)) {
      dst = v;
      break;
    }
  }
  ASSERT_NE(sim.shard_of(src), sim.shard_of(dst));

  sim.schedule_at_for(src, 0.25, [&sim, dst] {
    // Delivery inside the current window [0, 1): forbidden.
    sim.schedule_at_for(dst, 0.5, [] {});
  });
  EXPECT_THROW(sim.run_until(1.0), CheckError);
}

TEST(ShardedSim, SameShardSendInsideWindowIsAllowed) {
  ShardedSimulator sim(options(1, 4));
  std::vector<double> times;
  sim.schedule_at_for(2, 0.25, [&sim, &times] {
    times.push_back(sim.now());
    sim.schedule_at_for(2, 0.5, [&sim, &times] { times.push_back(sim.now()); });
  });
  sim.run_until(1.0);
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 0.25);
  EXPECT_DOUBLE_EQ(times[1], 0.5);
}

// run_until(end) is exclusive of events AT end — they belong to the
// next window.
TEST(ShardedSim, RunUntilIsExclusiveOfEnd) {
  ShardedSimulator sim(options(1, 2));
  bool ran = false;
  sim.schedule_at_for(0, 2.0, [&ran] { ran = true; });
  sim.run_until(2.0);
  EXPECT_FALSE(ran);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  sim.run_until(3.0);
  EXPECT_TRUE(ran);
}

TEST(ShardedSim, BarrierHookFiresOncePerWindow) {
  ShardedSimulator sim(options(2, 4, 0.5));
  std::size_t barriers = 0;
  sim.set_barrier_hook([&barriers] { ++barriers; });
  sim.run_until(2.0);  // four windows of 0.5
  EXPECT_EQ(barriers, 4u);
}

// A randomized event storm where every actor's behaviour depends only
// on its own node-keyed RNG must produce the SAME per-actor trace and
// the same event count for K = 1 and K = 4.
struct StormTrace {
  std::vector<std::vector<std::pair<double, std::uint64_t>>> per_actor;
  std::uint64_t events = 0;
};

StormTrace run_storm(std::size_t shards) {
  const std::size_t n = 32;
  const double lookahead = 0.5;
  ShardedSimulator sim(options(shards, n, lookahead));
  StormTrace trace;
  trace.per_actor.resize(n);
  std::vector<Rng> rngs;
  rngs.reserve(n);
  for (ActorId v = 0; v < n; ++v) rngs.push_back(Rng(derive_seed(99, v)));

  // Each event records at its actor, then fans out to two targets
  // derived from the ACTOR's own stream at times beyond the lookahead.
  struct Storm {
    ShardedSimulator& sim;
    StormTrace& trace;
    std::vector<Rng>& rngs;

    void fire(ActorId v, std::uint64_t tag, int depth) {
      trace.per_actor[v].emplace_back(sim.now(), tag);
      if (depth <= 0) return;
      Rng& rng = rngs[v];
      for (int k = 0; k < 2; ++k) {
        const auto target =
            static_cast<ActorId>(rng.uniform_u64(trace.per_actor.size()));
        const double delay = 0.5 + rng.uniform_double(0.0, 1.5);
        const std::uint64_t next_tag = rng.next_u64();
        sim.schedule_at_for(
            target, sim.now() + delay,
            [this, target, next_tag, depth] {
              fire(target, next_tag, depth - 1);
            });
      }
    }
  } storm{sim, trace, rngs};

  for (ActorId v = 0; v < n; ++v)
    sim.schedule_at_for(v, 0.1 + 0.01 * static_cast<double>(v),
                        [&storm, v] { storm.fire(v, v, 5); });
  sim.run_until(12.0);
  trace.events = sim.events_executed();
  return trace;
}

TEST(ShardedSim, EventStormIsShardCountInvariant) {
  const StormTrace serial = run_storm(1);
  const StormTrace sharded = run_storm(4);
  EXPECT_EQ(serial.events, sharded.events);
  ASSERT_EQ(serial.per_actor.size(), sharded.per_actor.size());
  for (std::size_t v = 0; v < serial.per_actor.size(); ++v)
    EXPECT_EQ(serial.per_actor[v], sharded.per_actor[v]) << "actor " << v;
  // The storm actually did something.
  std::size_t total = 0;
  for (const auto& t : serial.per_actor) total += t.size();
  EXPECT_GT(total, 100u);
}

}  // namespace
}  // namespace ppo::sim
