// Flag parsing used by every bench/example binary.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/cli.hpp"
#include "common/check.hpp"
#include "common/logging.hpp"
#include "common/table.hpp"

namespace ppo {
namespace {

Cli make_cli(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, EqualsSyntax) {
  const Cli cli = make_cli({"--nodes=500", "--alpha=0.25", "--name=test"});
  EXPECT_EQ(cli.get_int("nodes", 0), 500);
  EXPECT_DOUBLE_EQ(cli.get_double("alpha", 0.0), 0.25);
  EXPECT_EQ(cli.get_string("name", ""), "test");
}

TEST(Cli, SpaceSyntax) {
  const Cli cli = make_cli({"--nodes", "123", "--flag"});
  EXPECT_EQ(cli.get_int("nodes", 0), 123);
  EXPECT_TRUE(cli.get_bool("flag", false));
}

TEST(Cli, DefaultsWhenAbsent) {
  const Cli cli = make_cli({});
  EXPECT_EQ(cli.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(cli.get_double("missing", 1.5), 1.5);
  EXPECT_FALSE(cli.has("missing"));
}

TEST(Cli, BooleanSpellings) {
  EXPECT_TRUE(make_cli({"--x=yes"}).get_bool("x", false));
  EXPECT_TRUE(make_cli({"--x=1"}).get_bool("x", false));
  EXPECT_TRUE(make_cli({"--x=on"}).get_bool("x", false));
  EXPECT_FALSE(make_cli({"--x=no"}).get_bool("x", true));
}

TEST(Cli, PositionalArguments) {
  const Cli cli = make_cli({"alpha", "--k=1", "beta"});
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "alpha");
  EXPECT_EQ(cli.positional()[1], "beta");
}

TEST(Cli, MalformedNumberThrows) {
  const Cli cli = make_cli({"--nodes=abc"});
  EXPECT_THROW(cli.get_int("nodes", 0), CheckError);
}

TEST(Cli, EnvironmentFallback) {
  ::setenv("PPO_ENV_ONLY_FLAG", "99", 1);
  const Cli cli = make_cli({});
  EXPECT_EQ(cli.get_int("env-only-flag", 0), 99);
  ::unsetenv("PPO_ENV_ONLY_FLAG");
}

TEST(Cli, CommandLineBeatsEnvironment) {
  ::setenv("PPO_PRIORITY", "1", 1);
  const Cli cli = make_cli({"--priority=2"});
  EXPECT_EQ(cli.get_int("priority", 0), 2);
  ::unsetenv("PPO_PRIORITY");
}

TEST(LogLevel, ParseNames) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("bogus"), LogLevel::kOff);
}

TEST(TextTable, FormatsNumbers) {
  EXPECT_EQ(TextTable::num(1.5), "1.5");
  EXPECT_EQ(TextTable::num(2.0), "2");
  EXPECT_EQ(TextTable::num(0.12349, 3), "0.123");
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(SeriesTable, RejectsLengthMismatch) {
  std::ostringstream os;
  EXPECT_THROW(
      print_series_table(os, "t", "x", {1.0, 2.0}, {Series{"s", {1.0}}}),
      CheckError);
}

TEST(SeriesTable, PrintsNanAsDash) {
  std::ostringstream os;
  print_series_table(os, "demo", "x", {1.0},
                     {Series{"s", {std::nan("")}}});
  EXPECT_NE(os.str().find('-'), std::string::npos);
}

}  // namespace
}  // namespace ppo
