// Group-chat application layer: flooding delivery, anti-entropy
// catch-up after offline periods, eventual delivery under churn.
#include <gtest/gtest.h>

#include "apps/groupchat.hpp"
#include "churn/churn_model.hpp"
#include "graph/generators.hpp"
#include "sim/simulator.hpp"

namespace ppo::apps {
namespace {

struct Fixture {
  sim::Simulator sim;
  graph::Graph trust;
  churn::ExponentialChurn model;
  overlay::OverlayService service;
  GroupChat chat;

  explicit Fixture(std::size_t n, double alpha, std::uint64_t seed = 3)
      : trust([&] {
          Rng g(seed);
          return graph::barabasi_albert(n, 2, g);
        }()),
        model(churn::ExponentialChurn::from_availability(alpha, 30.0)),
        service(sim, trust, model,
                {.params = {.cache_size = 60,
                            .shuffle_length = 8,
                            .target_links = 12}},
                Rng(seed + 1)),
        chat(sim, service, {}, Rng(seed + 2)) {
    service.start();
    chat.start();
  }
};

TEST(GroupChat, FloodReachesAllOnlineMembersQuickly) {
  Fixture fx(50, 1.0);
  fx.sim.run_until(40.0);  // overlay converged
  const auto [author, seq] = fx.chat.publish(0, "hello group");
  fx.sim.run_until(45.0);
  EXPECT_DOUBLE_EQ(fx.chat.replication(author, seq), 1.0);
  EXPECT_LT(fx.chat.delivery_latency().max(), 2.0);
}

TEST(GroupChat, SequenceNumbersPerAuthor) {
  Fixture fx(20, 1.0);
  fx.sim.run_until(10.0);
  EXPECT_EQ(fx.chat.publish(3, "a").second, 1u);
  EXPECT_EQ(fx.chat.publish(3, "b").second, 2u);
  EXPECT_EQ(fx.chat.publish(4, "c").second, 1u);
  EXPECT_EQ(fx.chat.published_count(3), 2u);
}

TEST(GroupChat, PublishRequiresOnlineAuthor) {
  Fixture fx(20, 1.0);
  fx.sim.run_until(5.0);
  fx.service.churn_driver().fail_permanently(7);
  EXPECT_THROW(fx.chat.publish(7, "ghost"), CheckError);
}

TEST(GroupChat, OfflineMembersCatchUpViaAntiEntropy) {
  Fixture fx(40, 1.0, 11);
  fx.sim.run_until(30.0);

  // Take node 5 offline by force and publish while it is away.
  fx.service.churn_driver().fail_permanently(5);
  const auto [author, seq] = fx.chat.publish(0, "missed this?");
  fx.sim.run_until(35.0);
  EXPECT_FALSE(fx.chat.has_post(5, author, seq));

  // On rejoin, anti-entropy (its own or a peer answering its vector)
  // back-fills the missed post.
  fx.service.churn_driver().revive(5);
  fx.sim.run_until(50.0);
  EXPECT_TRUE(fx.chat.has_post(5, author, seq));
}

TEST(GroupChat, EventualDeliveryUnderChurn) {
  Fixture fx(60, 0.6, 17);
  fx.sim.run_until(60.0);

  // Publish a burst from random online authors.
  std::vector<std::pair<graph::NodeId, std::uint32_t>> posts;
  Rng rng(23);
  for (int i = 0; i < 10; ++i) {
    graph::NodeId author;
    do {
      author = static_cast<graph::NodeId>(rng.uniform_u64(60));
    } while (!fx.service.is_online(author));
    posts.push_back(fx.chat.publish(author, "post " + std::to_string(i)));
    fx.sim.run_until(fx.sim.now() + 3.0);
  }

  // After enough time for several churn cycles + anti-entropy, every
  // member (online or currently offline — state is durable) holds
  // every post.
  fx.sim.run_until(fx.sim.now() + 200.0);
  for (const auto& [author, seq] : posts)
    EXPECT_GT(fx.chat.replication(author, seq), 0.95)
        << "post (" << author << "," << seq << ")";
}

TEST(GroupChat, AntiEntropyOnlyRunsWhenOnline) {
  Fixture fx(20, 1.0, 19);
  for (graph::NodeId v = 0; v < 20; ++v)
    fx.service.churn_driver().fail_permanently(v);
  const auto before = fx.chat.anti_entropy_exchanges();
  fx.sim.run_until(20.0);
  EXPECT_EQ(fx.chat.anti_entropy_exchanges(), before);
}

TEST(GroupChat, StartTwiceThrows) {
  Fixture fx(20, 1.0);
  EXPECT_THROW(fx.chat.start(), CheckError);
}

}  // namespace
}  // namespace ppo::apps
