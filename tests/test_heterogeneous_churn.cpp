// Heterogeneous per-node churn (Yao et al.'s general setting; the
// paper homogenizes availability, §IV-B — we also support mixing).
#include <gtest/gtest.h>

#include "churn/churn_driver.hpp"
#include "churn/churn_model.hpp"
#include "graph/generators.hpp"
#include "overlay/service.hpp"
#include "sim/simulator.hpp"

namespace ppo::churn {
namespace {

TEST(HeterogeneousChurn, PerNodeAvailabilityRespected) {
  sim::Simulator sim;
  const auto stable = ExponentialChurn::from_availability(0.9, 10.0);
  const auto mobile = ExponentialChurn::from_availability(0.1, 10.0);
  // First 300 stable, remaining 300 mobile.
  std::vector<const ChurnModel*> models(300, &stable);
  models.insert(models.end(), 300, &mobile);
  ChurnDriver driver(sim, std::move(models), Rng(1));
  driver.start({});
  sim.run_until(200.0);

  std::size_t stable_online = 0, mobile_online = 0;
  for (NodeId v = 0; v < 300; ++v) stable_online += driver.is_online(v);
  for (NodeId v = 300; v < 600; ++v) mobile_online += driver.is_online(v);
  EXPECT_NEAR(static_cast<double>(stable_online) / 300.0, 0.9, 0.07);
  EXPECT_NEAR(static_cast<double>(mobile_online) / 300.0, 0.1, 0.07);
}

TEST(HeterogeneousChurn, NullModelRejected) {
  sim::Simulator sim;
  std::vector<const ChurnModel*> models(3, nullptr);
  EXPECT_THROW(ChurnDriver(sim, std::move(models), Rng(1)), CheckError);
}

TEST(HeterogeneousChurn, AddNodeInheritsOrOverrides) {
  sim::Simulator sim;
  const auto stable = ExponentialChurn::from_availability(0.95, 5.0);
  const auto mobile = ExponentialChurn::from_availability(0.05, 5.0);
  ChurnDriver driver(sim, {&stable, &stable}, Rng(2));
  driver.start({});
  const NodeId inherited = driver.add_node();          // stable
  const NodeId overridden = driver.add_node(&mobile);  // mobile
  sim.run_until(300.0);
  // Crude behavioural check: over many samples the mobile joiner is
  // online far less often.
  std::size_t inherited_online = 0, overridden_online = 0;
  for (int s = 0; s < 100; ++s) {
    sim.run_until(sim.now() + 2.0);
    inherited_online += driver.is_online(inherited);
    overridden_online += driver.is_online(overridden);
  }
  EXPECT_GT(inherited_online, 75u);
  EXPECT_LT(overridden_online, 25u);
}

TEST(HeterogeneousChurn, OverlayServiceSupportsMixedPopulations) {
  sim::Simulator sim;
  Rng grng(3);
  const graph::Graph trust = graph::barabasi_albert(60, 2, grng);
  const auto stable = ExponentialChurn::from_availability(0.9, 30.0);
  const auto mobile = ExponentialChurn::from_availability(0.2, 30.0);
  std::vector<const ChurnModel*> models;
  for (NodeId v = 0; v < 60; ++v)
    models.push_back(v % 2 == 0 ? &stable : &mobile);

  overlay::OverlayService service(sim, trust, std::move(models),
                                  {.params = {.cache_size = 60,
                                              .shuffle_length = 8,
                                              .target_links = 12}},
                                  Rng(4));
  service.start();
  sim.run_until(150.0);
  // The service runs and the stable half dominates the online set.
  std::size_t stable_online = 0, mobile_online = 0;
  for (NodeId v = 0; v < 60; ++v) {
    (v % 2 == 0 ? stable_online : mobile_online) +=
        service.is_online(v);
  }
  EXPECT_GT(stable_online, 2 * mobile_online);
  EXPECT_GT(service.overlay_snapshot().num_edges(), trust.num_edges());
}

TEST(HeterogeneousChurn, SizeMismatchRejected) {
  sim::Simulator sim;
  Rng grng(5);
  const graph::Graph trust = graph::barabasi_albert(10, 2, grng);
  const auto model = ExponentialChurn::from_availability(0.5, 30.0);
  std::vector<const ChurnModel*> models(7, &model);  // != 10
  EXPECT_THROW(overlay::OverlayService(sim, trust, std::move(models), {},
                                       Rng(6)),
               CheckError);
}

}  // namespace
}  // namespace ppo::churn
