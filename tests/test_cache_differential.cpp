// Differential test: PseudonymCache against a straightforward
// reference model under long random operation sequences, checking the
// invariants that the CYCLON policy must preserve regardless of the
// (intentionally unspecified) victim randomization.
#include <gtest/gtest.h>

#include <set>

#include "overlay/cache.hpp"

namespace ppo::overlay {
namespace {

TEST(CacheDifferential, InvariantsUnderRandomWorkload) {
  const std::size_t kCapacity = 24;
  PseudonymCache cache(kCapacity);
  Rng rng(101);

  // Reference bookkeeping: everything ever inserted with its expiry.
  std::set<PseudonymValue> ever_offered;
  double now = 0.0;
  const PseudonymValue own = 0xAAAA;

  for (int round = 0; round < 2000; ++round) {
    now += 0.7;
    // Compose a random received set (some fresh, some repeats, some
    // already expired, occasionally own).
    std::vector<PseudonymRecord> received;
    const std::size_t count = 1 + rng.uniform_u64(8);
    for (std::size_t i = 0; i < count; ++i) {
      PseudonymRecord r;
      const int kind = static_cast<int>(rng.uniform_u64(10));
      if (kind == 0) {
        r = {own, now + 50.0};
      } else if (kind == 1) {
        r = {rng.next_u64(), now - 1.0};  // already expired
      } else {
        r = {rng.next_u64() >> 16, now + 5.0 + rng.uniform_double() * 60.0};
      }
      received.push_back(r);
      ever_offered.insert(r.value);
    }
    const auto sent = cache.select_random(4, now, rng);
    cache.merge(received, own, sent, now, rng);

    // Invariant 1: bounded.
    ASSERT_LE(cache.size(), kCapacity);
    // Invariant 2: own value never cached.
    ASSERT_FALSE(cache.contains(own));
    // Invariant 3: everything in the cache was offered at some point
    // and is not long-expired (the rate-limited purge allows at most
    // one period of staleness).
    for (const auto& record : cache.snapshot(now)) {
      ASSERT_TRUE(ever_offered.count(record.value));
      ASSERT_GT(record.expiry, now);
    }
    // Invariant 4: selections return distinct live records.
    const auto sel = cache.select_random(6, now, rng);
    std::set<PseudonymValue> distinct;
    for (const auto& record : sel) {
      ASSERT_TRUE(distinct.insert(record.value).second);
      ASSERT_TRUE(record.valid_at(now));
    }
  }
}

TEST(CacheDifferential, FreshInsertsPreferEvictingSentEntries) {
  // Statistical check of the CYCLON victim preference: run many
  // full-cache merges; entries that were "sent" must vanish far more
  // often than bystanders.
  Rng rng(202);
  std::size_t sent_evictions = 0, bystander_evictions = 0;
  const int kTrials = 400;
  for (int trial = 0; trial < kTrials; ++trial) {
    PseudonymCache cache(10);
    std::vector<PseudonymRecord> fill;
    for (PseudonymValue v = 1; v <= 10; ++v)
      fill.push_back({v + static_cast<PseudonymValue>(trial) * 100, 1000.0});
    cache.merge(fill, 0, {}, 0.0, rng);

    // "Send" the first three, then merge three fresh records.
    const std::vector<PseudonymRecord> sent(fill.begin(), fill.begin() + 3);
    std::vector<PseudonymRecord> fresh;
    for (int i = 0; i < 3; ++i) fresh.push_back({rng.next_u64(), 1000.0});
    cache.merge(fresh, 0, sent, 0.0, rng);

    for (const auto& record : sent)
      sent_evictions += !cache.contains(record.value);
    for (auto it = fill.begin() + 3; it != fill.end(); ++it)
      bystander_evictions += !cache.contains(it->value);
  }
  // All three sent entries should be the victims virtually always.
  EXPECT_GT(sent_evictions, static_cast<std::size_t>(kTrials) * 3 * 9 / 10);
  EXPECT_LT(bystander_evictions, static_cast<std::size_t>(kTrials) / 10);
}

}  // namespace
}  // namespace ppo::overlay
