// The invitation-model f-sampler of §IV-A.
#include <gtest/gtest.h>

#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/sampling.hpp"
#include "graph/socialgen.hpp"

namespace ppo::graph {
namespace {

Graph social_base(std::size_t n, std::uint64_t seed) {
  SocialGraphOptions opts;
  opts.num_nodes = n;
  // Scale the community hierarchy down with the base size so small
  // test graphs still span multiple communities.
  opts.sub_community_size = std::max<std::size_t>(10, n / 100);
  opts.community_size = 10 * opts.sub_community_size;
  if (2 * opts.community_size > n) {
    opts.community_size = n / 2;
    opts.sub_community_size = std::max<std::size_t>(2, opts.community_size / 10);
  }
  Rng rng(seed);
  return synthetic_social_graph(opts, rng);
}

TEST(InvitationSample, ProducesRequestedSize) {
  const Graph base = social_base(5000, 1);
  Rng rng(2);
  const Graph sample = invitation_sample(base, {.target_size = 1000, .f = 0.5}, rng);
  EXPECT_EQ(sample.num_nodes(), 1000u);
}

TEST(InvitationSample, SampleIsConnected) {
  const Graph base = social_base(5000, 3);
  for (double f : {0.0, 0.25, 0.5, 1.0}) {
    Rng rng(4);
    const Graph sample =
        invitation_sample(base, {.target_size = 500, .f = f}, rng);
    EXPECT_TRUE(is_connected(sample)) << "f=" << f;
  }
}

TEST(InvitationSample, HigherFYieldsDenserSample) {
  // The paper reports 5649 edges at f=1.0 vs 3277 at f=0.5 for
  // 1000-node samples; the ordering must hold on our substitute.
  const Graph base = social_base(20000, 5);
  Rng r1(6), r2(6);
  const Graph dense = invitation_sample(base, {.target_size = 1000, .f = 1.0}, r1);
  const Graph sparse = invitation_sample(base, {.target_size = 1000, .f = 0.5}, r2);
  EXPECT_GT(dense.num_edges(), sparse.num_edges());
  // Both should land broadly in the paper's reported range.
  EXPECT_GT(dense.num_edges(), 3000u);
  EXPECT_LT(sparse.num_edges(), dense.num_edges());
  EXPECT_GT(sparse.num_edges(), 1000u);
}

TEST(InvitationSample, WholeGraphWhenTargetEqualsBase) {
  const Graph base = social_base(300, 7);
  Rng rng(8);
  const Graph sample = invitation_sample(base, {.target_size = 300, .f = 1.0}, rng);
  EXPECT_EQ(sample.num_nodes(), base.num_nodes());
  EXPECT_EQ(sample.num_edges(), base.num_edges());
}

TEST(InvitationSample, RejectsOversizedTarget) {
  const Graph base = ring(10);
  Rng rng(9);
  EXPECT_THROW(invitation_sample(base, {.target_size = 11, .f = 0.5}, rng),
               CheckError);
  EXPECT_THROW(invitation_sample(base, {.target_size = 0, .f = 0.5}, rng),
               CheckError);
  EXPECT_THROW(invitation_sample(base, {.target_size = 5, .f = 1.5}, rng),
               CheckError);
}

TEST(InvitationSample, SimilarGraphsFromDifferentStarts) {
  // §IV-A: for a fixed f the sampler produces similar graphs
  // regardless of the starting node. Compare edge counts across seeds.
  const Graph base = social_base(20000, 10);
  std::vector<double> counts;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(100 + seed);
    const Graph s = invitation_sample(base, {.target_size = 800, .f = 0.5}, rng);
    counts.push_back(static_cast<double>(s.num_edges()));
  }
  double lo = counts[0], hi = counts[0];
  for (double c : counts) {
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  EXPECT_LT(hi / lo, 1.6);
}

TEST(InvitationSample, FZeroIsChainLike) {
  // f = 0 adds max(1, 0) = 1 neighbor per visited node — a thin,
  // tree-like sample with edge count close to n-1 plus induced extras.
  const Graph base = social_base(20000, 11);
  Rng rng(12);
  const Graph s = invitation_sample(base, {.target_size = 500, .f = 0.0}, rng);
  EXPECT_TRUE(is_connected(s));
  EXPECT_LT(s.average_degree(), 6.0);
}

TEST(InvitationSample, DisconnectedBaseStillCompletes) {
  // Two disjoint rings: the sampler must restart to reach the target.
  Graph base(20);
  for (NodeId u = 0; u < 10; ++u)
    base.add_edge(u, static_cast<NodeId>((u + 1) % 10));
  for (NodeId u = 10; u < 20; ++u)
    base.add_edge(u, static_cast<NodeId>(10 + (u - 10 + 1) % 10));
  Rng rng(13);
  const Graph s = invitation_sample(base, {.target_size = 15, .f = 1.0}, rng);
  EXPECT_EQ(s.num_nodes(), 15u);
}

}  // namespace
}  // namespace ppo::graph
