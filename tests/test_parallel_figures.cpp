// Parallel-vs-serial determinism of the figure sweeps: the same root
// seed must produce byte-identical results at --jobs 1 and --jobs 8.
// This is the acceptance gate for running the paper's evaluation
// artefacts on the ppo_runner pool.
#include <gtest/gtest.h>

#include "experiments/figure_json.hpp"
#include "experiments/figures.hpp"

namespace ppo::experiments {
namespace {

WorkbenchOptions tiny_bench() {
  WorkbenchOptions opts;
  opts.seed = 17;
  opts.social.num_nodes = 3000;
  opts.social.sub_community_size = 50;
  opts.social.community_size = 500;
  opts.trust_nodes = 150;
  return opts;
}

FigureScale tiny_scale(std::size_t jobs) {
  FigureScale scale;
  scale.window.warmup = 40.0;
  scale.window.measure = 20.0;
  scale.window.sample_every = 10.0;
  scale.window.apl_sources = 8;
  scale.alphas = {0.25, 0.75};
  scale.seed = 3;
  scale.jobs = jobs;
  return scale;
}

void expect_identical(const std::vector<Series>& a,
                      const std::vector<Series>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t j = 0; j < a.size(); ++j) {
    EXPECT_EQ(a[j].name, b[j].name);
    ASSERT_EQ(a[j].values.size(), b[j].values.size());
    for (std::size_t i = 0; i < a[j].values.size(); ++i)
      EXPECT_EQ(a[j].values[i], b[j].values[i])
          << a[j].name << " diverges at alpha index " << i;
  }
}

TEST(ParallelFigures, AvailabilitySweepIsJobsInvariant) {
  Workbench serial_bench(tiny_bench());
  Workbench parallel_bench(tiny_bench());
  const auto serial = availability_sweep(serial_bench, tiny_scale(1));
  const auto parallel = availability_sweep(parallel_bench, tiny_scale(8));

  EXPECT_EQ(serial.telemetry.jobs, 1u);
  EXPECT_EQ(parallel.telemetry.jobs, 8u);
  EXPECT_EQ(serial.alphas, parallel.alphas);
  expect_identical(serial.connectivity, parallel.connectivity);
  expect_identical(serial.napl, parallel.napl);
}

TEST(ParallelFigures, LifetimeSweepIsJobsInvariant) {
  Workbench serial_bench(tiny_bench());
  Workbench parallel_bench(tiny_bench());
  FigureScale scale = tiny_scale(1);
  scale.alphas = {0.25};  // one cell keeps the doubled cost in check
  const auto serial = lifetime_sweep(serial_bench, scale);
  scale.jobs = 8;
  const auto parallel = lifetime_sweep(parallel_bench, scale);
  expect_identical(serial.connectivity, parallel.connectivity);
  expect_identical(serial.napl, parallel.napl);
}

TEST(ParallelFigures, ConvergenceTraceIsJobsInvariant) {
  Workbench serial_bench(tiny_bench());
  Workbench parallel_bench(tiny_bench());
  const auto serial = convergence_trace(serial_bench, 100.0, 20.0, 11, 1);
  const auto parallel = convergence_trace(parallel_bench, 100.0, 20.0, 11, 8);
  EXPECT_EQ(serial.trust.times(), parallel.trust.times());
  EXPECT_EQ(serial.trust.values(), parallel.trust.values());
  EXPECT_EQ(serial.overlay_r3.values(), parallel.overlay_r3.values());
  EXPECT_EQ(serial.overlay_r9.values(), parallel.overlay_r9.values());
}

TEST(ParallelFigures, SweepJsonCarriesSeriesScaleAndTelemetry) {
  Workbench bench(tiny_bench());
  const FigureScale scale = tiny_scale(2);
  const auto fig = availability_sweep(bench, scale);

  const runner::Json j = to_json(fig);
  ASSERT_TRUE(j.is_object());
  EXPECT_EQ(j.at("alphas").size(), 2u);
  EXPECT_EQ(j.at("connectivity").size(), 5u);
  EXPECT_EQ(j.at("connectivity").at(0).at("name").as_string(), "trust-f1.0");
  EXPECT_EQ(j.at("connectivity").at(0).at("values").size(), 2u);
  EXPECT_EQ(j.at("telemetry").at("cells").as_uint(), 2u);
  EXPECT_EQ(j.at("telemetry").at("jobs").as_uint(), 2u);
  EXPECT_EQ(j.at("telemetry").at("cell_seconds").size(), 2u);

  // The document survives a dump/parse round trip unchanged.
  EXPECT_EQ(runner::Json::parse(j.dump(2)), j);

  const runner::Json scale_json = to_json(scale);
  EXPECT_EQ(scale_json.at("seed").as_uint(), 3u);
  EXPECT_EQ(scale_json.at("jobs").as_uint(), 2u);
  EXPECT_DOUBLE_EQ(scale_json.at("warmup").as_double(), 40.0);
}

}  // namespace
}  // namespace ppo::experiments
