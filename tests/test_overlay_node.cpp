// OverlayNode protocol logic against a mock environment: pseudonym
// lifecycle, shuffle composition, merge behaviour, slot budgeting.
#include <gtest/gtest.h>

#include <map>

#include "overlay/node.hpp"

namespace ppo::overlay {
namespace {

using privacylink::NodeId;

/// Deterministic in-memory environment: immediate delivery hooks,
/// manual clock, scripted pseudonym minting.
class MockEnv : public NodeEnvironment {
 public:
  sim::Time clock = 0.0;
  std::map<PseudonymValue, NodeId> registry;
  PseudonymValue next_value = 1000;

  struct Sent {
    NodeId from, to;
    std::vector<PseudonymRecord> set;
    bool is_request;
  };
  std::vector<Sent> outbox;
  std::vector<std::pair<double, sim::EventFn>> alarms;

  sim::Time now() const override { return clock; }
  bool is_online(NodeId) const override { return true; }

  PseudonymRecord mint_pseudonym(NodeId owner, double lifetime) override {
    const PseudonymValue value = next_value++;
    registry[value] = owner;
    return PseudonymRecord{value, clock + lifetime};
  }

  std::optional<NodeId> resolve(PseudonymValue value) override {
    const auto it = registry.find(value);
    if (it == registry.end()) return std::nullopt;
    return it->second;
  }

  void send_shuffle_request(NodeId from, NodeId to,
                            std::vector<PseudonymRecord> set) override {
    outbox.push_back({from, to, std::move(set), true});
  }
  void send_shuffle_response(NodeId from, NodeId to,
                             std::vector<PseudonymRecord> set) override {
    outbox.push_back({from, to, std::move(set), false});
  }
  void schedule(double delay, sim::EventFn fn) override {
    alarms.emplace_back(clock + delay, std::move(fn));
  }

  /// Fires every alarm due at or before the current clock.
  void fire_due_alarms() {
    for (std::size_t i = 0; i < alarms.size();) {
      if (alarms[i].first <= clock) {
        auto fn = std::move(alarms[i].second);
        alarms.erase(alarms.begin() + static_cast<std::ptrdiff_t>(i));
        fn();
      } else {
        ++i;
      }
    }
  }
};

OverlayParams small_params() {
  OverlayParams p;
  p.cache_size = 20;
  p.shuffle_length = 5;
  p.target_links = 10;
  p.pseudonym_lifetime = 30.0;
  return p;
}

TEST(OverlayNode, SlotBudgetShrinksWithTrustDegree) {
  MockEnv env;
  const OverlayParams p = small_params();  // target 10
  OverlayNode leaf(0, p, {1, 2}, env, Rng(1));
  OverlayNode hub(1, p, {2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13}, env, Rng(2));
  EXPECT_EQ(leaf.slot_capacity(), 8u);   // 10 - 2
  EXPECT_EQ(hub.slot_capacity(), 0u);    // trust degree >= target
}

TEST(OverlayNode, MintsPseudonymWhenFirstOnline) {
  MockEnv env;
  const OverlayParams p = small_params();
  OverlayNode node(0, p, {1}, env, Rng(3));
  EXPECT_FALSE(node.own_pseudonym().has_value());
  node.handle_online();
  ASSERT_TRUE(node.own_pseudonym().has_value());
  EXPECT_DOUBLE_EQ(node.own_pseudonym()->expiry, 30.0);
  EXPECT_EQ(env.registry.at(node.own_pseudonym()->value), 0u);
}

TEST(OverlayNode, RenewsExpiredPseudonymViaAlarm) {
  MockEnv env;
  const OverlayParams p = small_params();
  OverlayNode node(0, p, {1}, env, Rng(4));
  node.handle_online();
  const PseudonymValue first = node.own_pseudonym()->value;

  env.clock = 30.1;
  env.fire_due_alarms();
  ASSERT_TRUE(node.own_pseudonym().has_value());
  EXPECT_NE(node.own_pseudonym()->value, first);
  EXPECT_DOUBLE_EQ(node.own_pseudonym()->expiry, 60.1);
}

TEST(OverlayNode, OfflineNodeRenewsOnRejoinNotViaAlarm) {
  MockEnv env;
  const OverlayParams p = small_params();
  OverlayNode node(0, p, {1}, env, Rng(5));
  node.handle_online();
  node.handle_offline();

  env.clock = 50.0;
  env.fire_due_alarms();  // alarm fires while offline: no mint
  EXPECT_FALSE(node.own_pseudonym().has_value());

  node.handle_online();  // rejoin re-mints
  ASSERT_TRUE(node.own_pseudonym().has_value());
  EXPECT_DOUBLE_EQ(node.own_pseudonym()->expiry, 80.0);
}

TEST(OverlayNode, ShuffleTickSendsOwnPseudonymToTrustedPeer) {
  MockEnv env;
  const OverlayParams p = small_params();
  OverlayNode node(0, p, {7}, env, Rng(6));
  node.handle_online();
  node.shuffle_tick();

  ASSERT_EQ(env.outbox.size(), 1u);
  const auto& msg = env.outbox[0];
  EXPECT_TRUE(msg.is_request);
  EXPECT_EQ(msg.from, 0u);
  EXPECT_EQ(msg.to, 7u);  // only link available
  ASSERT_EQ(msg.set.size(), 1u);  // empty cache: own pseudonym only
  EXPECT_EQ(msg.set[0].value, node.own_pseudonym()->value);
  EXPECT_EQ(node.counters().requests_sent, 1u);
}

TEST(OverlayNode, OfflineNodeDoesNotTick) {
  MockEnv env;
  OverlayNode node(0, small_params(), {7}, env, Rng(7));
  node.shuffle_tick();
  EXPECT_TRUE(env.outbox.empty());
  EXPECT_EQ(node.counters().online_ticks, 0u);
}

TEST(OverlayNode, RequestTriggersResponseAndMerge) {
  MockEnv env;
  const OverlayParams p = small_params();
  OverlayNode node(0, p, {7}, env, Rng(8));
  node.handle_online();

  // Peer 7 sends its pseudonym (minted so resolution works).
  const PseudonymRecord peer = env.mint_pseudonym(7, 30.0);
  node.handle_shuffle_request(7, {peer});

  ASSERT_EQ(env.outbox.size(), 1u);
  EXPECT_FALSE(env.outbox[0].is_request);
  EXPECT_EQ(env.outbox[0].to, 7u);
  EXPECT_EQ(node.counters().responses_sent, 1u);

  // The received pseudonym entered cache and sampler.
  EXPECT_TRUE(node.cache().contains(peer.value));
  const auto links = node.pseudonym_links();
  ASSERT_EQ(links.size(), 1u);
  EXPECT_EQ(links[0], peer.value);
  EXPECT_EQ(node.out_degree(), 2u);  // 1 trusted + 1 pseudonym
}

TEST(OverlayNode, OwnAndSelfResolvingPseudonymsNeverSampled) {
  MockEnv env;
  const OverlayParams p = small_params();
  OverlayNode node(0, p, {7}, env, Rng(9));
  node.handle_online();
  const PseudonymRecord own = *node.own_pseudonym();

  // Roll the node's pseudonym over, then replay its PREVIOUS value
  // with a forged later expiry: the node must recognize its own past
  // address and refuse a self link.
  env.clock = 30.1;
  env.fire_due_alarms();
  const PseudonymRecord current = *node.own_pseudonym();
  ASSERT_NE(current.value, own.value);
  const PseudonymRecord forged_old{own.value, env.clock + 100.0};

  node.handle_shuffle_request(7, {current, forged_old});
  EXPECT_TRUE(node.pseudonym_links().empty());
  EXPECT_FALSE(node.cache().contains(current.value));
  // The forged copy of the old value may sit in the cache (it is not
  // the CURRENT own value), but must never become a link.
}

TEST(OverlayNode, ResponseMergesWithoutReplying) {
  MockEnv env;
  const OverlayParams p = small_params();
  OverlayNode node(0, p, {7}, env, Rng(10));
  node.handle_online();
  node.shuffle_tick();
  env.outbox.clear();

  const PseudonymRecord peer = env.mint_pseudonym(9, 30.0);
  node.handle_shuffle_response({peer});
  EXPECT_TRUE(env.outbox.empty());
  EXPECT_EQ(node.counters().shuffles_completed, 1u);
  EXPECT_TRUE(node.cache().contains(peer.value));
}

TEST(OverlayNode, ExpiredLinksVanishFromLinkSet) {
  MockEnv env;
  const OverlayParams p = small_params();
  OverlayNode node(0, p, {7}, env, Rng(11));
  node.handle_online();
  const PseudonymRecord peer = env.mint_pseudonym(9, 10.0);
  node.handle_shuffle_request(7, {peer});
  EXPECT_EQ(node.pseudonym_links().size(), 1u);

  env.clock = 10.5;
  EXPECT_TRUE(node.pseudonym_links().empty());
  EXPECT_EQ(node.out_degree(), 1u);
}

TEST(OverlayNode, ShuffleSetBoundedByEll) {
  MockEnv env;
  OverlayParams p = small_params();
  p.shuffle_length = 3;
  OverlayNode node(0, p, {7}, env, Rng(12));
  node.handle_online();

  std::vector<PseudonymRecord> flood;
  for (int i = 0; i < 10; ++i) flood.push_back(env.mint_pseudonym(100 + i, 30.0));
  node.handle_shuffle_request(7, flood);
  env.outbox.clear();

  node.shuffle_tick();
  ASSERT_EQ(env.outbox.size(), 1u);
  EXPECT_LE(env.outbox[0].set.size(), 3u);  // own + up to l-1 = 2
}

TEST(OverlayNode, AdaptiveLifetimeTracksOfflineDurations) {
  MockEnv env;
  OverlayParams p = small_params();
  p.adaptive_lifetime = true;
  p.adaptive_lifetime_factor = 3.0;
  p.adaptive_min_lifetime = 1.0;
  p.adaptive_max_lifetime = 1000.0;
  p.pseudonym_lifetime = 30.0;  // seeds the EWMA at 10
  OverlayNode node(0, p, {7}, env, Rng(13));

  node.handle_online();
  const double first_lifetime = node.own_pseudonym()->expiry - env.clock;
  EXPECT_NEAR(first_lifetime, 30.0, 1e-9);

  // One long offline period (100) shifts the EWMA: 0.7*10 + 0.3*100 = 37.
  // Rejoining past the old expiry re-mints with the adapted lifetime.
  node.handle_offline();
  env.clock = 100.0;
  node.handle_online();
  ASSERT_TRUE(node.own_pseudonym().has_value());
  const double adapted = node.own_pseudonym()->expiry - env.clock;
  EXPECT_NEAR(adapted, 3.0 * 37.0, 1e-6);
}

}  // namespace
}  // namespace ppo::overlay
