// Telemetry plane units: streaming log-bucketed histograms (bounded
// relative error on quantiles), Prometheus text exposition (format,
// grouping, escaping), the dependency-free HTTP server (exercised
// through a real socket), and the wall-clock sampling ticker (ring +
// JSONL export).
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics_registry.hpp"
#include "obs/streaming_histogram.hpp"
#include "runner/json.hpp"
#include "telemetry/http_server.hpp"
#include "telemetry/prometheus.hpp"
#include "telemetry/sampler.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#define PPO_TEST_HAVE_SOCKETS 1
#endif

namespace {

using namespace ppo;

// Log-bucket resolution: 8 sub-buckets per octave => upper/lower
// bucket-edge ratio 2^(1/8), so a quantile estimate can overshoot the
// true value by at most that factor (plus nothing below: estimates
// are bucket upper bounds).
constexpr double kBucketRatio = 1.0905077326652577;  // 2^(1/8)

TEST(StreamingHistogram, CountSumMaxExact) {
  obs::StreamingHistogram hist;
  double sum = 0.0;
  for (int i = 1; i <= 1000; ++i) {
    hist.observe(static_cast<double>(i));
    sum += static_cast<double>(i);
  }
  const auto snap = hist.snapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_DOUBLE_EQ(snap.sum, sum);
  EXPECT_DOUBLE_EQ(snap.max, 1000.0);
  EXPECT_DOUBLE_EQ(snap.mean(), sum / 1000.0);
}

TEST(StreamingHistogram, QuantilesWithinBucketResolution) {
  obs::StreamingHistogram hist;
  for (int i = 1; i <= 10000; ++i) hist.observe(static_cast<double>(i));
  const auto snap = hist.snapshot();
  const struct {
    double q;
    double expect;
  } cases[] = {{0.5, 5000.0}, {0.95, 9500.0}, {0.99, 9900.0}};
  for (const auto& c : cases) {
    const double est = snap.quantile(c.q);
    // The estimate is an upper bucket edge: never below the true
    // quantile, at most one bucket ratio above it.
    EXPECT_GE(est, c.expect * 0.999) << "q=" << c.q;
    EXPECT_LE(est, c.expect * kBucketRatio * 1.001) << "q=" << c.q;
  }
}

TEST(StreamingHistogram, WideDynamicRange) {
  obs::StreamingHistogram hist;
  // Microseconds to hours in one histogram — the point of log buckets.
  for (const double v : {1e-6, 1e-3, 1.0, 60.0, 3600.0}) hist.observe(v);
  const auto snap = hist.snapshot();
  EXPECT_EQ(snap.count, 5u);
  EXPECT_GE(snap.quantile(1.0), 3600.0);
  EXPECT_LE(snap.quantile(0.2), 1e-6 * kBucketRatio);
}

TEST(StreamingHistogram, NonPositiveValuesLandInFirstBucket) {
  obs::StreamingHistogram hist;
  hist.observe(0.0);
  hist.observe(-5.0);
  const auto snap = hist.snapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.buckets[0], 2u);
  // The first bucket's upper bound is the smallest representable
  // estimate — tiny but not negative.
  EXPECT_GT(obs::StreamingHistogram::bucket_upper_bound(0), 0.0);
}

TEST(StreamingHistogram, BucketIndexMonotone) {
  std::size_t prev = 0;
  for (double v = 1e-7; v < 1e7; v *= 1.7) {
    const std::size_t idx = obs::StreamingHistogram::bucket_index(v);
    EXPECT_GE(idx, prev);
    EXPECT_LT(idx, obs::StreamingHistogram::kBuckets);
    // The bucket's upper bound caps the value it was assigned for
    // (interior buckets; the clamped extremes saturate).
    if (idx > 0 && idx + 1 < obs::StreamingHistogram::kBuckets)
      EXPECT_LE(v, obs::StreamingHistogram::bucket_upper_bound(idx) * 1.0001);
    prev = idx;
  }
}

TEST(StreamingHistogram, EmptyQuantileIsZero) {
  const auto snap = obs::StreamingHistogram{}.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 0.0);
}

TEST(Prometheus, NameSanitization) {
  EXPECT_EQ(telemetry::prometheus_name("events/sec.core-1"),
            "events_sec_core_1");
  EXPECT_EQ(telemetry::prometheus_name("9lives"), "_9lives");
  EXPECT_EQ(telemetry::prometheus_name(""), "_");
  EXPECT_EQ(telemetry::prometheus_name("ok_name:sub"), "ok_name:sub");
}

TEST(Prometheus, LabelValueEscaping) {
  EXPECT_EQ(telemetry::prometheus_label_value("a\"b\\c\nd"),
            "a\\\"b\\\\c\\nd");
}

TEST(Prometheus, RendersCountersGaugesWithTypeLines) {
  obs::MetricsRegistry registry;
  registry.add_counter("requests", 41);
  registry.add_counter("requests", 1);
  registry.set_gauge("online", 7.5);
  const std::string text = telemetry::render_prometheus(registry);
  EXPECT_NE(text.find("# TYPE requests counter\nrequests 42\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE online gauge\nonline 7.5\n"), std::string::npos)
      << text;
}

TEST(Prometheus, DimensionedCellsShareOneTypeLine) {
  obs::MetricsRegistry registry;
  registry.add_counter("shard_events", 10, {{"shard", "0"}});
  registry.add_counter("shard_events", 20, {{"shard", "1"}});
  const std::string text = telemetry::render_prometheus(registry);
  // One TYPE comment for the family, one sample per labelled cell.
  std::size_t type_lines = 0, pos = 0;
  while ((pos = text.find("# TYPE shard_events", pos)) != std::string::npos) {
    ++type_lines;
    ++pos;
  }
  EXPECT_EQ(type_lines, 1u);
  EXPECT_NE(text.find("shard_events{shard=\"0\"} 10\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("shard_events{shard=\"1\"} 20\n"), std::string::npos)
      << text;
}

TEST(Prometheus, StreamingHistogramExposition) {
  obs::MetricsRegistry registry;
  registry.observe("latency_seconds", 0.5);
  registry.observe("latency_seconds", 2.0);
  const std::string text = telemetry::render_prometheus(registry);
  EXPECT_NE(text.find("# TYPE latency_seconds histogram\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("latency_seconds_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("latency_seconds_sum 2.5\n"), std::string::npos) << text;
  EXPECT_NE(text.find("latency_seconds_count 2\n"), std::string::npos) << text;
  // Cumulative `le` buckets are monotone nondecreasing.
  std::istringstream lines(text);
  std::string line;
  std::uint64_t prev = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("latency_seconds_bucket", 0) != 0) continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos);
    const std::uint64_t cumulative = std::stoull(line.substr(space + 1));
    EXPECT_GE(cumulative, prev) << line;
    prev = cumulative;
  }
  EXPECT_EQ(prev, 2u);  // the +Inf bucket saw everything
}

TEST(Prometheus, PlainHistogramRendersAsSummary) {
  obs::MetricsRegistry registry;
  auto& hist = registry.histogram("hops");
  for (std::size_t i = 0; i < 10; ++i) hist.add(i);
  const std::string text = telemetry::render_prometheus(registry);
  EXPECT_NE(text.find("# TYPE hops summary\n"), std::string::npos) << text;
  EXPECT_NE(text.find("hops{quantile=\"0.5\"}"), std::string::npos) << text;
  EXPECT_NE(text.find("hops_count 10\n"), std::string::npos) << text;
}

TEST(Prometheus, ContentTypeIsTextFormat04) {
  EXPECT_EQ(std::string(telemetry::prometheus_content_type()),
            "text/plain; version=0.0.4; charset=utf-8");
}

#if defined(PPO_TEST_HAVE_SOCKETS)

/// Minimal blocking HTTP client for loopback: one request, reads to
/// connection close (the server sends Connection: close).
std::string http_get(std::uint16_t port, const std::string& request_text) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  EXPECT_EQ(::send(fd, request_text.data(), request_text.size(), 0),
            static_cast<ssize_t>(request_text.size()));
  std::string response;
  char buf[2048];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0)
    response.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  return response;
}

TEST(HttpServer, ServesMetricsOverRealSocket) {
  obs::MetricsRegistry registry;
  registry.add_counter("pings", 3);
  telemetry::HttpServer server(
      0, [&registry](const std::string& path) -> telemetry::HttpResponse {
        if (path == "/metrics")
          return {200, telemetry::prometheus_content_type(),
                  telemetry::render_prometheus(registry)};
        return {404, "text/plain; charset=utf-8", "not found\n"};
      });
  ASSERT_GT(server.port(), 0);  // ephemeral bind resolved

  const std::string response =
      http_get(server.port(), "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("version=0.0.4"), std::string::npos) << response;
  EXPECT_NE(response.find("pings 3\n"), std::string::npos) << response;

  // Query strings are stripped before dispatch.
  const std::string with_query = http_get(
      server.port(), "GET /metrics?debug=1 HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(with_query.find("pings 3\n"), std::string::npos);

  const std::string missing =
      http_get(server.port(), "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(missing.find("HTTP/1.1 404"), std::string::npos);

  const std::string post =
      http_get(server.port(), "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(post.find("HTTP/1.1 405"), std::string::npos);

  EXPECT_EQ(server.requests_served(), 4u);
  server.stop();
  server.stop();  // idempotent
}

#endif  // PPO_TEST_HAVE_SOCKETS

TEST(SampleRing, KeepsMostRecentOldestFirst) {
  telemetry::SampleRing ring(3);
  for (int i = 0; i < 5; ++i) {
    telemetry::TelemetrySample sample;
    sample.wall_seconds = static_cast<double>(i);
    ring.push(sample);
  }
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.total_pushed(), 5u);
  const auto recent = ring.recent();
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_DOUBLE_EQ(recent[0].wall_seconds, 2.0);
  EXPECT_DOUBLE_EQ(recent[2].wall_seconds, 4.0);
}

TEST(TelemetryTicker, SamplesRegistryAndExportsJsonl) {
  const std::string path =
      testing::TempDir() + "/ppo_telemetry_ticker_test.jsonl";
  obs::MetricsRegistry registry;
  registry.add_counter("work_done", 17);
  registry.set_gauge("temperature", 21.5);
  registry.observe("latency", 0.25);
  {
    telemetry::TelemetryTicker::Options options;
    options.interval_seconds = 0.01;
    options.ring_capacity = 8;
    options.jsonl_path = path;
    telemetry::TelemetryTicker ticker(registry, options);
    // The stop() path takes a final sample, so even a zero-sleep run
    // exports at least one row; give the ticker a moment regardless.
    while (ticker.samples_taken() == 0) {
    }
    ticker.stop();
    EXPECT_GE(ticker.samples_taken(), 1u);
    EXPECT_GE(ticker.ring().size(), 1u);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::size_t rows = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const runner::Json row = runner::Json::parse(line);  // throws on junk
    EXPECT_TRUE(row.contains("wall_seconds"));
    EXPECT_EQ(row.at("counters").at("work_done").as_int(), 17);
    EXPECT_DOUBLE_EQ(row.at("gauges").at("temperature").as_double(), 21.5);
    EXPECT_EQ(row.at("quantiles").at("latency").at("count").as_int(), 1);
    ++rows;
  }
  EXPECT_GE(rows, 1u);
  std::remove(path.c_str());
}

TEST(TelemetryTicker, RingJsonlMatchesSampleCount) {
  obs::MetricsRegistry registry;
  telemetry::SampleRing ring(4);
  telemetry::TelemetrySample sample;
  sample.metrics = registry.snapshot();
  ring.push(sample);
  ring.push(sample);
  const std::string jsonl = ring.recent_jsonl();
  std::size_t lines = 0;
  for (const char c : jsonl) lines += c == '\n';
  EXPECT_EQ(lines, 2u);
}

}  // namespace
