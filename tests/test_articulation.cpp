// Articulation points (§III-E's cut-vertex exposure analysis).
#include <gtest/gtest.h>

#include "graph/articulation.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"

namespace ppo::graph {
namespace {

TEST(Articulation, PathInteriorVerticesAreCuts) {
  const Graph g = path_graph(5);
  const auto cuts = articulation_points(g);
  EXPECT_EQ(cuts, (std::vector<NodeId>{1, 2, 3}));
  EXPECT_FALSE(is_cut_vertex(g, 0));
  EXPECT_TRUE(is_cut_vertex(g, 2));
}

TEST(Articulation, CycleHasNone) {
  EXPECT_TRUE(articulation_points(ring(8)).empty());
  EXPECT_DOUBLE_EQ(cut_vertex_fraction(ring(8)), 0.0);
}

TEST(Articulation, StarHubIsTheOnlyCut) {
  const Graph g = star(6);
  EXPECT_EQ(articulation_points(g), std::vector<NodeId>{0});
  EXPECT_NEAR(cut_vertex_fraction(g), 1.0 / 7.0, 1e-12);
}

TEST(Articulation, BridgeBetweenTriangles) {
  // Two triangles joined by an edge 2-3: both bridge endpoints cut.
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(3, 5);
  g.add_edge(2, 3);
  EXPECT_EQ(articulation_points(g), (std::vector<NodeId>{2, 3}));
}

TEST(Articulation, DisconnectedGraphHandledPerComponent) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);  // path: 1 is cut
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(3, 5);  // triangle: none
  EXPECT_EQ(articulation_points(g), std::vector<NodeId>{1});
}

TEST(Articulation, AgreesWithRemovalDefinition) {
  // Differential check: v is a cut vertex iff masking v out increases
  // the component count among the remaining vertices.
  Rng rng(3);
  const Graph g = erdos_renyi_gnm(60, 75, rng);  // sparse -> many cuts
  const auto base = connected_components(g).count();
  const auto cuts = articulation_points(g);
  for (NodeId v = 0; v < 60; ++v) {
    if (g.degree(v) == 0) continue;  // isolated: trivially not a cut
    NodeMask mask(60, true);
    mask.set(v, false);
    // Removing a non-cut vertex of positive degree keeps the count;
    // removing a cut vertex raises it.
    const auto without = connected_components(g, mask).count();
    const bool increases = without > base;
    const bool listed = std::binary_search(cuts.begin(), cuts.end(), v);
    EXPECT_EQ(listed, increases) << "vertex " << v;
  }
}

TEST(Articulation, DenseRandomGraphHasFewCuts) {
  Rng rng(5);
  const Graph g = erdos_renyi_gnm(200, 2000, rng);
  EXPECT_LT(cut_vertex_fraction(g), 0.02);
}

}  // namespace
}  // namespace ppo::graph
