// ChaCha20 / Poly1305 / AEAD against RFC 8439 test vectors plus
// tamper-detection properties.
#include <gtest/gtest.h>

#include "crypto/aead.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/poly1305.hpp"

namespace ppo::crypto {
namespace {

ChaChaKey make_key(const std::string& hex) {
  const Bytes raw = from_hex(hex);
  ChaChaKey key{};
  std::copy(raw.begin(), raw.end(), key.begin());
  return key;
}

ChaChaNonce make_nonce(const std::string& hex) {
  const Bytes raw = from_hex(hex);
  ChaChaNonce nonce{};
  std::copy(raw.begin(), raw.end(), nonce.begin());
  return nonce;
}

const std::string kSunscreen =
    "Ladies and Gentlemen of the class of '99: If I could offer you "
    "only one tip for the future, sunscreen would be it.";

TEST(ChaCha20, Rfc8439BlockFunction) {
  const ChaChaKey key = make_key(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const ChaChaNonce nonce = make_nonce("000000090000004a00000000");
  const auto block = chacha20_block(key, nonce, 1);
  EXPECT_EQ(to_hex(BytesView(block.data(), block.size())),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(ChaCha20, Rfc8439Encryption) {
  const ChaChaKey key = make_key(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const ChaChaNonce nonce = make_nonce("000000000000004a00000000");
  const Bytes plaintext = to_bytes(kSunscreen);
  const Bytes ciphertext =
      chacha20_xor(key, nonce, 1, BytesView(plaintext.data(), plaintext.size()));
  EXPECT_EQ(to_hex(BytesView(ciphertext.data(), ciphertext.size())),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
            "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
            "07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"
            "5af90bbf74a35be6b40b8eedf2785e42874d");
}

TEST(ChaCha20, XorIsInvolution) {
  const ChaChaKey key = make_key(
      "ffeeddccbbaa99887766554433221100ffeeddccbbaa99887766554433221100");
  const ChaChaNonce nonce = make_nonce("0102030405060708090a0b0c");
  const Bytes plaintext = to_bytes("round-trip me through the stream cipher");
  const Bytes ct = chacha20_xor(key, nonce, 7, BytesView(plaintext.data(), plaintext.size()));
  const Bytes pt = chacha20_xor(key, nonce, 7, BytesView(ct.data(), ct.size()));
  EXPECT_EQ(pt, plaintext);
  EXPECT_NE(ct, plaintext);
}

TEST(Poly1305, Rfc8439Vector) {
  const Bytes raw_key = from_hex(
      "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
  PolyKey key{};
  std::copy(raw_key.begin(), raw_key.end(), key.begin());
  const Bytes msg = to_bytes("Cryptographic Forum Research Group");
  const PolyTag tag = poly1305(key, BytesView(msg.data(), msg.size()));
  EXPECT_EQ(to_hex(BytesView(tag.data(), tag.size())),
            "a8061dc1305136c6c22b8baf0c0127a9");
}

TEST(Poly1305, EmptyMessage) {
  PolyKey key{};
  key[0] = 1;  // r = 1 (clamped ok), s = 0
  const PolyTag tag = poly1305(key, {});
  // With no blocks processed the accumulator stays 0; tag = s = 0.
  EXPECT_EQ(to_hex(BytesView(tag.data(), tag.size())),
            "00000000000000000000000000000000");
}

TEST(Aead, Rfc8439SealVector) {
  const ChaChaKey key = make_key(
      "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f");
  const ChaChaNonce nonce = make_nonce("070000004041424344454647");
  const Bytes aad = from_hex("50515253c0c1c2c3c4c5c6c7");
  const Bytes plaintext = to_bytes(kSunscreen);

  const Bytes sealed = aead_seal(key, nonce, BytesView(aad.data(), aad.size()),
                                 BytesView(plaintext.data(), plaintext.size()));
  ASSERT_EQ(sealed.size(), plaintext.size() + kAeadTagSize);
  EXPECT_EQ(to_hex(BytesView(sealed.data(), sealed.size() - kAeadTagSize)),
            "d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d6"
            "3dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b36"
            "92ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc"
            "3ff4def08e4b7a9de576d26586cec64b6116");
  EXPECT_EQ(to_hex(BytesView(sealed.data() + sealed.size() - kAeadTagSize,
                             kAeadTagSize)),
            "1ae10b594f09e26a7e902ecbd0600691");
}

TEST(Aead, RoundTrip) {
  const ChaChaKey key = make_key(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const ChaChaNonce nonce = make_nonce("00112233445566778899aabb");
  const Bytes aad = to_bytes("header");
  const Bytes plaintext = to_bytes("secret payload for the overlay");

  const Bytes sealed = aead_seal(key, nonce, BytesView(aad.data(), aad.size()),
                                 BytesView(plaintext.data(), plaintext.size()));
  const auto opened = aead_open(key, nonce, BytesView(aad.data(), aad.size()),
                                BytesView(sealed.data(), sealed.size()));
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, plaintext);
}

TEST(Aead, DetectsCiphertextTampering) {
  const ChaChaKey key = make_key(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const ChaChaNonce nonce = make_nonce("00112233445566778899aabb");
  const Bytes plaintext = to_bytes("integrity matters");

  Bytes sealed = aead_seal(key, nonce, {}, BytesView(plaintext.data(), plaintext.size()));
  for (std::size_t i = 0; i < sealed.size(); i += 7) {
    Bytes tampered = sealed;
    tampered[i] ^= 0x01;
    EXPECT_FALSE(aead_open(key, nonce, {}, BytesView(tampered.data(), tampered.size()))
                     .has_value())
        << "bit flip at byte " << i << " was not detected";
  }
}

TEST(Aead, DetectsAadTampering) {
  const ChaChaKey key = make_key(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const ChaChaNonce nonce = make_nonce("00112233445566778899aabb");
  const Bytes aad = to_bytes("context");
  const Bytes plaintext = to_bytes("bound to context");

  const Bytes sealed = aead_seal(key, nonce, BytesView(aad.data(), aad.size()),
                                 BytesView(plaintext.data(), plaintext.size()));
  const Bytes wrong_aad = to_bytes("CONTEXT");
  EXPECT_FALSE(aead_open(key, nonce, BytesView(wrong_aad.data(), wrong_aad.size()),
                         BytesView(sealed.data(), sealed.size()))
                   .has_value());
}

TEST(Aead, RejectsTruncatedInput) {
  const ChaChaKey key{};
  const ChaChaNonce nonce{};
  const Bytes tiny = from_hex("0011223344");
  EXPECT_FALSE(aead_open(key, nonce, {}, BytesView(tiny.data(), tiny.size()))
                   .has_value());
}

TEST(Aead, EmptyPlaintextStillAuthenticated) {
  const ChaChaKey key{};
  const ChaChaNonce nonce{};
  const Bytes sealed = aead_seal(key, nonce, {}, {});
  EXPECT_EQ(sealed.size(), kAeadTagSize);
  EXPECT_TRUE(aead_open(key, nonce, {}, BytesView(sealed.data(), sealed.size()))
                  .has_value());
  const Bytes aad = to_bytes("x");
  EXPECT_FALSE(aead_open(key, nonce, BytesView(aad.data(), aad.size()),
                         BytesView(sealed.data(), sealed.size()))
                   .has_value());
}

}  // namespace
}  // namespace ppo::crypto
