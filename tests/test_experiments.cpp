// Scenario runners and figure functions at reduced scale: the paper's
// qualitative shapes must already show on small graphs.
#include <gtest/gtest.h>

#include "experiments/figures.hpp"
#include "experiments/scenario.hpp"
#include "experiments/workbench.hpp"

namespace ppo::experiments {
namespace {

WorkbenchOptions tiny_bench() {
  WorkbenchOptions opts;
  opts.seed = 11;
  opts.social.num_nodes = 4000;
  opts.social.sub_community_size = 50;
  opts.social.community_size = 500;
  opts.trust_nodes = 250;
  return opts;
}

FigureScale tiny_scale() {
  FigureScale scale;
  scale.window.warmup = 60.0;
  scale.window.measure = 20.0;
  scale.window.sample_every = 10.0;
  scale.window.apl_sources = 16;
  scale.alphas = {0.25, 0.5, 1.0};
  scale.seed = 5;
  return scale;
}

OverlayScenario tiny_scenario(double alpha) {
  OverlayScenario s;
  s.churn.alpha = alpha;
  s.params.cache_size = 100;
  s.params.shuffle_length = 12;
  s.params.target_links = 20;
  s.params.pseudonym_lifetime = 90.0;
  s.window = tiny_scale().window;
  s.seed = 3;
  return s;
}

TEST(Workbench, CachesGraphs) {
  Workbench bench(tiny_bench());
  const graph::Graph& a = bench.trust_graph(0.5);
  const graph::Graph& b = bench.trust_graph(0.5);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.num_nodes(), 250u);
  EXPECT_GT(bench.trust_graph(1.0).num_edges(), a.num_edges());
}

TEST(ChurnSpec, FactoryHonoursModelChoice) {
  ChurnSpec spec;
  spec.alpha = 0.25;
  auto expo = spec.make();
  EXPECT_NEAR(expo->availability(), 0.25, 1e-12);
  spec.pareto = true;
  auto pareto = spec.make();
  EXPECT_NEAR(pareto->availability(), 0.25, 1e-12);
  EXPECT_NE(dynamic_cast<churn::ParetoChurn*>(pareto.get()), nullptr);
}

TEST(RunOverlay, ImprovesOnTrustGraphUnderChurn) {
  Workbench bench(tiny_bench());
  const graph::Graph& trust = bench.trust_graph(0.5);
  const OverlayScenario scenario = tiny_scenario(0.35);

  const auto overlay = run_overlay(trust, scenario);
  const auto baseline =
      run_static(trust, scenario.churn, scenario.window, scenario.seed);

  EXPECT_LT(overlay.stats.frac_disconnected.mean(),
            baseline.stats.frac_disconnected.mean() * 0.5);
  EXPECT_LT(overlay.stats.norm_apl.mean(), baseline.stats.norm_apl.mean());
  EXPECT_GT(overlay.final_total_edges, trust.num_edges());
  EXPECT_EQ(overlay.per_node.size(), trust.num_nodes());
  EXPECT_GT(overlay.messages_total, 0u);
}

TEST(RunOverlay, OnlineFractionTracksAlpha) {
  Workbench bench(tiny_bench());
  const auto result =
      run_overlay(bench.trust_graph(0.5), tiny_scenario(0.5));
  EXPECT_NEAR(result.stats.online_fraction.mean(), 0.5, 0.1);
}

TEST(RunStatic, FullAvailabilityIsConnectedSample) {
  Workbench bench(tiny_bench());
  const auto result = run_static(bench.trust_graph(0.5), {.alpha = 1.0},
                                 tiny_scale().window, 1);
  EXPECT_DOUBLE_EQ(result.stats.frac_disconnected.mean(), 0.0);
}

TEST(RunOverlayTrace, ConnectivityConvergesDownward) {
  Workbench bench(tiny_bench());
  OverlayScenario scenario = tiny_scenario(0.2);
  OverlayTraceSpec spec;
  spec.horizon = 150.0;
  spec.sample_every = 10.0;
  spec.apl_sources = 8;
  const auto trace =
      run_overlay_trace(bench.trust_graph(0.5), scenario, spec);
  ASSERT_EQ(trace.connectivity.size(), 15u);
  // The overlay must end up clearly better-connected than the bare
  // trust graph under the same churn, and no worse than it started.
  const auto baseline = run_static(bench.trust_graph(0.5), scenario.churn,
                                   scenario.window, scenario.seed ^ 0xB);
  const double late = trace.connectivity.mean_since(110.0);
  EXPECT_LT(late, baseline.stats.frac_disconnected.mean() * 0.6);
}

TEST(RunOverlayTrace, ReplacementRatesOrderedByLifetime) {
  Workbench bench(tiny_bench());
  OverlayTraceSpec spec;
  spec.horizon = 250.0;
  spec.sample_every = 25.0;
  spec.track_connectivity = false;
  spec.track_replacements = true;

  auto scenario_short = tiny_scenario(0.3);
  scenario_short.params.pseudonym_lifetime = 60.0;
  auto scenario_inf = tiny_scenario(0.3);
  scenario_inf.params.pseudonym_lifetime = kInfiniteLifetime;

  const auto short_trace =
      run_overlay_trace(bench.trust_graph(0.5), scenario_short, spec);
  const auto inf_trace =
      run_overlay_trace(bench.trust_graph(0.5), scenario_inf, spec);

  // Steady state: expiring pseudonyms force replacements, eternal
  // ones converge to (near) zero churn (paper Fig. 9).
  EXPECT_GT(short_trace.replacements.mean_since(150.0),
            inf_trace.replacements.mean_since(150.0) + 0.05);
}

TEST(ErReference, HasRequestedShape) {
  const graph::Graph er = er_reference(100, 800, 9);
  EXPECT_EQ(er.num_nodes(), 100u);
  EXPECT_EQ(er.num_edges(), 800u);
}

TEST(Figures, AvailabilitySweepShapes) {
  Workbench bench(tiny_bench());
  const auto fig = availability_sweep(bench, tiny_scale());
  ASSERT_EQ(fig.alphas.size(), 3u);
  ASSERT_EQ(fig.connectivity.size(), 5u);
  ASSERT_EQ(fig.napl.size(), 5u);

  const auto& trust05 = fig.connectivity[1].values;   // trust-f0.5
  const auto& overlay05 = fig.connectivity[3].values; // overlay-f0.5
  // At the lowest alpha the overlay must beat the bare trust graph.
  EXPECT_LT(overlay05.front(), trust05.front() * 0.7);
  // At alpha = 1 both are connected.
  EXPECT_NEAR(trust05.back(), 0.0, 1e-9);
  EXPECT_NEAR(overlay05.back(), 0.0, 1e-9);
}

TEST(Figures, DegreeDistributionsShiftRight) {
  Workbench bench(tiny_bench());
  const auto fig = degree_distributions(bench, tiny_scale(), {0.5});
  ASSERT_EQ(fig.entries.size(), 1u);
  const auto& e = fig.entries[0];
  EXPECT_GT(e.overlay.mean(), 2.0 * e.trust.mean());
  EXPECT_GT(e.random.mean(), 2.0 * e.trust.mean());
}

TEST(Figures, MessageOverheadAveragesNearTwo) {
  Workbench bench(tiny_bench());
  const auto fig = message_overhead(bench, tiny_scale(), {0.5});
  ASSERT_EQ(fig.entries.size(), 1u);
  const auto& entry = fig.entries[0];
  EXPECT_EQ(entry.rows.size(), 250u);
  EXPECT_TRUE(std::is_sorted(
      entry.rows.begin(), entry.rows.end(),
      [](const auto& a, const auto& b) { return a.trust_degree > b.trust_degree; }));
  // alpha = 0.5: requests always sent, responses only reach online
  // peers, so the average sits between 1 and 2.
  EXPECT_GT(entry.mean_messages, 1.0);
  EXPECT_LT(entry.mean_messages, 2.5);
}

}  // namespace
}  // namespace ppo::experiments
