// Application-layer broadcast over overlay graphs.
#include <gtest/gtest.h>

#include "dissemination/broadcast.hpp"
#include "graph/generators.hpp"

namespace ppo::dissem {
namespace {

TEST(Flood, FullCoverageOnConnectedGraph) {
  Rng grng(1);
  const graph::Graph g = graph::erdos_renyi_gnm(100, 500, grng);
  Rng rng(2);
  const BroadcastResult r = broadcast(g, {}, 0, {}, rng);
  EXPECT_EQ(r.online_nodes, 100u);
  EXPECT_EQ(r.reached, 100u);
  EXPECT_DOUBLE_EQ(r.coverage, 1.0);
  EXPECT_GT(r.messages_sent, 0u);
  EXPECT_GT(r.mean_latency, 0.0);
}

TEST(Flood, OfflineNodesBlockPropagation) {
  // Path 0-1-2: with node 1 offline the message cannot reach 2.
  const graph::Graph g = graph::path_graph(3);
  graph::NodeMask online(3, true);
  online.set(1, false);
  Rng rng(3);
  const BroadcastResult r = broadcast(g, online, 0, {}, rng);
  EXPECT_EQ(r.online_nodes, 2u);
  EXPECT_EQ(r.reached, 1u);
  EXPECT_DOUBLE_EQ(r.coverage, 0.5);
}

TEST(Flood, HopLimitRespected) {
  const graph::Graph g = graph::path_graph(10);
  Rng rng(4);
  BroadcastOptions opts;
  opts.max_hops = 3;
  const BroadcastResult r = broadcast(g, {}, 0, opts, rng);
  EXPECT_EQ(r.reached, 4u);  // source + 3 hops down the path
  EXPECT_LE(r.max_hops_used, 3u);
}

TEST(Flood, LatencyAccumulatesAlongPath) {
  const graph::Graph g = graph::path_graph(5);
  Rng rng(5);
  BroadcastOptions opts;
  opts.min_latency = opts.max_latency = 0.1;
  const BroadcastResult r = broadcast(g, {}, 0, opts, rng);
  EXPECT_NEAR(r.max_latency, 0.4, 1e-9);  // 4 hops to the far end
}

TEST(Epidemic, FanoutLimitsMessages) {
  Rng grng(6);
  const graph::Graph g = graph::erdos_renyi_gnm(200, 3000, grng);
  Rng r1(7), r2(7);
  const BroadcastResult flood = broadcast(g, {}, 0, {}, r1);
  BroadcastOptions opts;
  opts.fanout = 4;
  const BroadcastResult epi = broadcast(g, {}, 0, opts, r2);
  EXPECT_LT(epi.messages_sent, flood.messages_sent / 2);
  EXPECT_GT(epi.coverage, 0.9);  // fanout-4 push still covers well
}

TEST(Broadcast, SourceMustBeOnline) {
  const graph::Graph g = graph::ring(5);
  graph::NodeMask online(5, false);
  Rng rng(8);
  EXPECT_THROW(broadcast(g, online, 0, {}, rng), CheckError);
}

TEST(Broadcast, IsolatedSourceReachesOnlyItself) {
  graph::Graph g(5);
  Rng rng(9);
  const BroadcastResult r = broadcast(g, {}, 0, {}, rng);
  EXPECT_EQ(r.reached, 1u);
  EXPECT_EQ(r.messages_sent, 0u);
}

}  // namespace
}  // namespace ppo::dissem
