// Tracer contract: category parsing, zero side effects when disabled,
// bounded buffers, canonical merge order (including K-invariance of
// the merged stream under the sharded backend), and the exporters.
#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <tuple>
#include <vector>

#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "runner/json.hpp"
#include "sim/sharded_simulator.hpp"

namespace ppo::obs {
namespace {

/// Installs a tracer for one test scope and always uninstalls.
class ScopedTracer {
 public:
  explicit ScopedTracer(std::uint32_t mask = kTraceAll,
                        std::size_t capacity = 1u << 16)
      : tracer_(capacity) {
    install_tracer(&tracer_, mask);
  }
  ~ScopedTracer() { uninstall_tracer(); }

  Tracer& tracer() { return tracer_; }

 private:
  Tracer tracer_;
};

TEST(TraceCategories, ParsesNamedSets) {
  EXPECT_EQ(parse_trace_categories(""), kTraceNone);
  EXPECT_EQ(parse_trace_categories("none"), kTraceNone);
  EXPECT_EQ(parse_trace_categories("off"), kTraceNone);
  EXPECT_EQ(parse_trace_categories("all"), kTraceAll);
  EXPECT_EQ(parse_trace_categories("shuffle"),
            static_cast<std::uint32_t>(TraceCategory::kShuffle));
  EXPECT_EQ(parse_trace_categories("shuffle,churn"),
            static_cast<std::uint32_t>(TraceCategory::kShuffle) |
                static_cast<std::uint32_t>(TraceCategory::kChurn));
  // Case and whitespace are forgiven.
  EXPECT_EQ(parse_trace_categories(" Shuffle , CHURN "),
            parse_trace_categories("shuffle,churn"));
  EXPECT_THROW(parse_trace_categories("bogus"), std::invalid_argument);
}

TEST(TraceCategories, NamesRoundTrip) {
  EXPECT_STREQ(trace_category_name(TraceCategory::kShuffle), "shuffle");
  EXPECT_STREQ(trace_category_name(TraceCategory::kPseudonym), "pseudonym");
  EXPECT_EQ(parse_trace_categories(trace_category_name(TraceCategory::kChurn)),
            static_cast<std::uint32_t>(TraceCategory::kChurn));
}

TEST(TraceMacros, DisabledSitesEvaluateNoArguments) {
  ASSERT_EQ(trace_mask(), kTraceNone);  // no tracer installed
  int evaluations = 0;
  const auto expensive = [&evaluations] {
    ++evaluations;
    return 1.0;
  };
  PPO_TRACE_COUNTER(TraceCategory::kUser, "c", 0, expensive());
  PPO_TRACE_EVENT(TraceCategory::kUser, "e", 0,
                  (TraceArg{"k", expensive()}));
  EXPECT_EQ(evaluations, 0);
}

TEST(TraceMacros, MaskFiltersCategories) {
  ScopedTracer scoped(static_cast<std::uint32_t>(TraceCategory::kChurn));
  PPO_TRACE_EVENT(TraceCategory::kChurn, "kept", 1);
  PPO_TRACE_EVENT(TraceCategory::kShuffle, "filtered", 1);
  const auto records = scoped.tracer().merged();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_STREQ(records[0].name, "kept");
  EXPECT_EQ(records[0].category, TraceCategory::kChurn);
}

TEST(TraceMacros, RecordsCarryContextAndArgs) {
  ScopedTracer scoped;
  set_sim_time_context(2.5);
  set_trace_shard(3);
  PPO_TRACE_SPAN_BEGIN(TraceCategory::kShuffle, "exchange", 7, 42,
                       (TraceArg{"target", 9.0}));
  PPO_TRACE_COUNTER(TraceCategory::kShard, "load", kExternalOrigin, 17.0);
  set_trace_shard(0);
  clear_sim_time_context();

  const auto records = scoped.tracer().merged();
  ASSERT_EQ(records.size(), 2u);
  // Canonical order puts origin 7 before the external origin.
  EXPECT_EQ(records[0].time, 2.5);
  EXPECT_EQ(records[0].origin, 7u);
  EXPECT_EQ(records[0].shard, 3u);
  EXPECT_EQ(records[0].phase, TracePhase::kBegin);
  EXPECT_EQ(records[0].id, 42u);
  EXPECT_STREQ(records[0].args[0].key, "target");
  EXPECT_EQ(records[0].args[0].value, 9.0);
  EXPECT_EQ(records[1].origin, kExternalOrigin);
  EXPECT_EQ(records[1].value, 17.0);
}

TEST(Tracer, BoundsBufferAndCountsDrops) {
  ScopedTracer scoped(kTraceAll, /*capacity=*/4);
  for (int i = 0; i < 10; ++i)
    PPO_TRACE_EVENT(TraceCategory::kUser, "e", i);
  EXPECT_EQ(scoped.tracer().records_recorded(), 4u);
  EXPECT_EQ(scoped.tracer().records_dropped(), 6u);
  EXPECT_EQ(scoped.tracer().merged().size(), 4u);
}

TEST(Tracer, MergeOrdersByTimeOriginSeq) {
  ScopedTracer scoped;
  set_sim_time_context(2.0);
  PPO_TRACE_EVENT(TraceCategory::kUser, "late", 1);
  set_sim_time_context(1.0);
  PPO_TRACE_EVENT(TraceCategory::kUser, "early-b", 9);
  PPO_TRACE_EVENT(TraceCategory::kUser, "early-a", 4);
  PPO_TRACE_EVENT(TraceCategory::kUser, "early-a2", 4);
  clear_sim_time_context();

  const auto records = scoped.tracer().merged();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_STREQ(records[0].name, "early-a");   // (1.0, 4, seq 0)
  EXPECT_STREQ(records[1].name, "early-a2");  // (1.0, 4, seq 1)
  EXPECT_STREQ(records[2].name, "early-b");   // (1.0, 9)
  EXPECT_STREQ(records[3].name, "late");      // (2.0, 1)
}

/// The merged stream of actor-emitted records must be identical for
/// every shard count: actors are pinned to shards, so (time, origin)
/// fully determines a record's merge position.
TEST(Tracer, MergedStreamIsShardCountInvariant) {
  using Key = std::tuple<double, std::uint32_t, std::string>;
  const std::size_t n = 12;
  std::vector<std::vector<Key>> per_k;

  for (const std::size_t shards : {1u, 2u, 4u}) {
    Tracer tracer;
    install_tracer(&tracer, kTraceAll);
    sim::ShardedSimulator::Options o;
    o.shards = shards;
    o.num_actors = n;
    o.lookahead = 1.0;
    sim::ShardedSimulator sim(o);
    for (sim::ActorId v = 0; v < n; ++v) {
      sim.schedule_at_for(v, 0.25, [&sim, v] {
        PPO_TRACE_EVENT(TraceCategory::kUser, "tick", v);
        // Cross-window self message: second record at a later time.
        sim.schedule_at_for(v, sim.now() + 1.0, [v] {
          PPO_TRACE_EVENT(TraceCategory::kUser, "tock", v);
        });
      });
    }
    sim.run_until(3.0);
    uninstall_tracer();

    std::vector<Key> keys;
    for (const auto& r : tracer.merged()) {
      if (r.origin == kExternalOrigin) continue;  // backend counters
      keys.emplace_back(r.time, r.origin, r.name);
    }
    ASSERT_EQ(keys.size(), 2 * n);
    per_k.push_back(std::move(keys));
  }
  EXPECT_EQ(per_k[0], per_k[1]);
  EXPECT_EQ(per_k[0], per_k[2]);
}

TEST(TraceExport, ChromeJsonIsValidAndJsonlRoundTrips) {
  ScopedTracer scoped;
  set_sim_time_context(0.5);
  PPO_TRACE_SPAN_BEGIN(TraceCategory::kShuffle, "exchange", 3, 99);
  set_sim_time_context(0.75);
  PPO_TRACE_SPAN_END(TraceCategory::kShuffle, "exchange", 3, 99);
  PPO_TRACE_COUNTER(TraceCategory::kShard, "window_events", kExternalOrigin,
                    5.0);
  clear_sim_time_context();
  const auto records = scoped.tracer().merged();

  const auto chrome = runner::Json::parse(chrome_trace_json(records));
  ASSERT_TRUE(chrome.contains("traceEvents"));
  ASSERT_EQ(chrome.at("traceEvents").size(), 3u);
  const auto& begin = chrome.at("traceEvents").at(0);
  EXPECT_EQ(begin.at("ph").as_string(), "b");
  EXPECT_EQ(begin.at("ts").as_double(), 0.5e6);
  EXPECT_EQ(begin.at("tid").as_uint(), 3u);

  const std::string jsonl = trace_jsonl(records);
  std::size_t lines = 0;
  std::size_t start = 0;
  while (start < jsonl.size()) {
    const std::size_t end = jsonl.find('\n', start);
    const auto line = runner::Json::parse(jsonl.substr(start, end - start));
    EXPECT_TRUE(line.contains("t"));
    EXPECT_TRUE(line.contains("name"));
    ++lines;
    start = end + 1;
  }
  EXPECT_EQ(lines, 3u);
}

/// Counts records handed over by buffer evictions, and checks each
/// batch preserves per-buffer emission order.
class CollectingSink : public TraceSink {
 public:
  void write(std::vector<TraceRecord>&& batch) override {
    ++batches;
    std::uint64_t last_seq = 0;
    for (const TraceRecord& record : batch) {
      if (!records.empty() || last_seq > 0)
        EXPECT_GT(record.seq, last_seq);
      last_seq = record.seq;
      records.push_back(record);
    }
  }

  std::size_t batches = 0;
  std::vector<TraceRecord> records;
};

TEST(TraceStreaming, FullBuffersEvictToSinkWithNoLoss) {
  CollectingSink sink;
  Tracer tracer(/*capacity_per_buffer=*/16, &sink);
  install_tracer(&tracer, kTraceAll);
  constexpr std::size_t kEvents = 1000;  // 62 evictions at capacity 16
  for (std::size_t i = 0; i < kEvents; ++i) {
    set_sim_time_context(static_cast<double>(i));
    PPO_TRACE_EVENT(TraceCategory::kUser, "tick",
                    static_cast<std::uint32_t>(i % 7));
  }
  clear_sim_time_context();
  uninstall_tracer();

  // Everything beyond capacity was evicted to the sink, nothing
  // dropped; the remainder is still resident.
  EXPECT_GT(sink.batches, 0u);
  EXPECT_EQ(tracer.records_dropped(), 0u);
  EXPECT_EQ(tracer.records_recorded(), kEvents);
  EXPECT_EQ(sink.records.size() + tracer.merged().size(), kEvents);
  EXPECT_EQ(tracer.records_flushed(), sink.records.size());

  tracer.flush_to_sink();
  EXPECT_EQ(sink.records.size(), kEvents);
  EXPECT_EQ(tracer.records_flushed(), kEvents);
  EXPECT_TRUE(tracer.merged().empty());

  // Single emitting thread: seq is a strict total order, so no record
  // was duplicated or reordered on its way through the sink.
  for (std::size_t i = 1; i < sink.records.size(); ++i)
    EXPECT_GT(sink.records[i].seq, sink.records[i - 1].seq);
}

TEST(TraceStreaming, WithoutSinkFullBuffersDrop) {
  Tracer tracer(/*capacity_per_buffer=*/16);
  install_tracer(&tracer, kTraceAll);
  for (std::size_t i = 0; i < 100; ++i)
    PPO_TRACE_EVENT(TraceCategory::kUser, "tick", 0);
  uninstall_tracer();
  EXPECT_EQ(tracer.merged().size(), 16u);
  EXPECT_EQ(tracer.records_dropped(), 84u);
  tracer.flush_to_sink();  // no sink: must be a safe no-op
  EXPECT_EQ(tracer.records_flushed(), 0u);
}

TEST(TraceStreaming, JsonlStreamSinkWritesEveryRecord) {
  const std::string path =
      ::testing::TempDir() + "/ppo_trace_stream_test.jsonl";
  constexpr std::size_t kEvents = 257;  // not a multiple of the capacity
  {
    JsonlStreamSink sink(path);
    Tracer tracer(/*capacity_per_buffer=*/32, &sink);
    install_tracer(&tracer, kTraceAll);
    for (std::size_t i = 0; i < kEvents; ++i) {
      set_sim_time_context(static_cast<double>(i) * 0.25);
      PPO_TRACE_EVENT(TraceCategory::kUser, "tick", 1,
                      (TraceArg{"i", static_cast<double>(i)}));
    }
    clear_sim_time_context();
    uninstall_tracer();
    tracer.flush_to_sink();
    sink.close();
    EXPECT_EQ(sink.lines_written(), kEvents);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto parsed = runner::Json::parse(line);
    EXPECT_TRUE(parsed.contains("t"));
    EXPECT_TRUE(parsed.contains("name"));
    ++lines;
  }
  EXPECT_EQ(lines, kEvents);
}

}  // namespace
}  // namespace ppo::obs
