// Open-addressing FlatMap64: correctness incl. backward-shift
// deletion, growth, and randomized differential testing against
// std::unordered_map.
#include <gtest/gtest.h>

#include <unordered_map>

#include "common/flat_map.hpp"
#include "common/rng.hpp"

namespace ppo {
namespace {

TEST(FlatMap, InsertFindErase) {
  FlatMap64 map;
  EXPECT_TRUE(map.empty());
  map.insert(42, 7);
  ASSERT_NE(map.find(42), nullptr);
  EXPECT_EQ(*map.find(42), 7u);
  EXPECT_EQ(map.find(43), nullptr);
  EXPECT_TRUE(map.erase(42));
  EXPECT_FALSE(map.erase(42));
  EXPECT_EQ(map.find(42), nullptr);
  EXPECT_TRUE(map.empty());
}

TEST(FlatMap, ValuePointerIsMutable) {
  FlatMap64 map;
  map.insert(1, 10);
  *map.find(1) = 20;
  EXPECT_EQ(*map.find(1), 20u);
}

TEST(FlatMap, ZeroKeySupported) {
  FlatMap64 map;
  map.insert(0, 5);
  ASSERT_NE(map.find(0), nullptr);
  EXPECT_EQ(*map.find(0), 5u);
  EXPECT_TRUE(map.erase(0));
}

TEST(FlatMap, GrowsPastInitialCapacity) {
  FlatMap64 map(4);
  for (std::uint64_t k = 0; k < 1000; ++k) map.insert(k * 3 + 1, static_cast<std::uint32_t>(k));
  EXPECT_EQ(map.size(), 1000u);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    ASSERT_NE(map.find(k * 3 + 1), nullptr);
    EXPECT_EQ(*map.find(k * 3 + 1), k);
  }
}

TEST(FlatMap, Clear) {
  FlatMap64 map;
  for (std::uint64_t k = 1; k <= 50; ++k) map.insert(k, 0);
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(10), nullptr);
  map.insert(10, 1);  // usable after clear
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap, DifferentialAgainstStdUnorderedMap) {
  FlatMap64 map(32);
  std::unordered_map<std::uint64_t, std::uint32_t> reference;
  Rng rng(99);
  for (int op = 0; op < 50000; ++op) {
    // Small key space to force dense collision/deletion churn.
    const std::uint64_t key = rng.uniform_u64(256);
    const int action = static_cast<int>(rng.uniform_u64(3));
    if (action == 0) {
      if (reference.find(key) == reference.end()) {
        const auto value = static_cast<std::uint32_t>(op);
        map.insert(key, value);
        reference[key] = value;
      }
    } else if (action == 1) {
      EXPECT_EQ(map.erase(key), reference.erase(key) > 0);
    } else {
      const auto* found = map.find(key);
      const auto it = reference.find(key);
      if (it == reference.end()) {
        EXPECT_EQ(found, nullptr);
      } else {
        ASSERT_NE(found, nullptr);
        EXPECT_EQ(*found, it->second);
      }
    }
    ASSERT_EQ(map.size(), reference.size());
  }
}

}  // namespace
}  // namespace ppo
