// MixTransport and the full-stack mode: the overlay protocol running
// over real onion circuits instead of the ideal transport.
#include <gtest/gtest.h>

#include "churn/churn_model.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "overlay/service.hpp"
#include "privacylink/mix_transport.hpp"
#include "sim/simulator.hpp"

namespace ppo::privacylink {
namespace {

TEST(MixTransport, DeliversThroughCircuit) {
  sim::Simulator sim;
  MixNetwork mix(sim, {.num_relays = 6}, Rng(1));
  std::vector<char> online(4, 1);
  MixTransport transport(sim, mix, {.circuit_hops = 3}, Rng(2),
                         [&](graph::NodeId v) { return online[v] != 0; });

  bool delivered = false;
  EXPECT_TRUE(transport.send(0, 1, [&] { delivered = true; }));
  sim.run_all();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(transport.messages_delivered(), 1u);
  EXPECT_GT(transport.bytes_sent(), 3 * kOnionLayerOverhead);
  EXPECT_EQ(mix.messages_forwarded(), 3u);
}

TEST(MixTransport, GatesOnEndpointAvailability) {
  sim::Simulator sim;
  MixNetwork mix(sim, {.num_relays = 4}, Rng(3));
  std::vector<char> online(2, 1);
  MixTransport transport(sim, mix, {.circuit_hops = 2}, Rng(4),
                         [&](graph::NodeId v) { return online[v] != 0; });

  online[0] = 0;
  EXPECT_FALSE(transport.send(0, 1, [] {}));

  online[0] = 1;
  online[1] = 0;
  bool delivered = false;
  EXPECT_TRUE(transport.send(0, 1, [&] { delivered = true; }));
  sim.run_all();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(transport.messages_dropped(), 1u);
}

TEST(MixTransport, RelayFailureLosesInFlightTraffic) {
  sim::Simulator sim;
  MixNetwork mix(sim, {.num_relays = 2}, Rng(5));
  std::vector<char> online(2, 1);
  MixTransport transport(sim, mix, {.circuit_hops = 2}, Rng(6),
                         [&](graph::NodeId v) { return online[v] != 0; });
  bool delivered = false;
  transport.send(0, 1, [&] { delivered = true; });
  mix.fail_relay(0);
  mix.fail_relay(1);
  sim.run_all();
  EXPECT_FALSE(delivered);
}

TEST(FullStack, OverlayProtocolRunsOverRealOnionCircuits) {
  // End-to-end: 24 nodes, every shuffle message onion-wrapped through
  // 2-hop circuits with real X25519 + AEAD crypto; the overlay still
  // forms (pseudonym links appear, graph densifies beyond trust).
  sim::Simulator sim;
  Rng grng(7);
  const graph::Graph trust = graph::barabasi_albert(24, 2, grng);
  const auto model = churn::ExponentialChurn::from_availability(1.0, 30.0);

  overlay::OverlayServiceOptions options;
  options.params.target_links = 8;
  options.params.cache_size = 40;
  options.params.shuffle_length = 6;
  options.use_mix_network = true;
  options.mix.num_relays = 8;
  options.mix_transport.circuit_hops = 2;

  overlay::OverlayService service(sim, trust, model, options, Rng(8));
  service.start();
  sim.run_until(25.0);

  graph::Graph snapshot = service.overlay_snapshot();
  EXPECT_GT(snapshot.num_edges(), trust.num_edges() + 20);
  EXPECT_TRUE(graph::is_connected(snapshot));
  ASSERT_NE(service.mix_network(), nullptr);
  EXPECT_GT(service.mix_network()->messages_forwarded(), 100u);
  EXPECT_EQ(service.transport().messages_sent(),
            service.total_counters().messages_sent());
}

}  // namespace
}  // namespace ppo::privacylink
