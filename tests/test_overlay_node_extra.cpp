// Additional OverlayNode behaviours: slot floors, rejoin shuffles,
// cache injection instrumentation, naive-sampling offer semantics.
#include <gtest/gtest.h>

#include <map>

#include "overlay/node.hpp"

namespace ppo::overlay {
namespace {

using privacylink::NodeId;

/// Minimal environment: same shape as the one in test_overlay_node.
class Env : public NodeEnvironment {
 public:
  sim::Time clock = 0.0;
  std::map<PseudonymValue, NodeId> registry;
  PseudonymValue next_value = 1;
  std::size_t requests = 0, responses = 0;

  sim::Time now() const override { return clock; }
  bool is_online(NodeId) const override { return true; }
  PseudonymRecord mint_pseudonym(NodeId owner, double lifetime) override {
    // Spread the values across the 64-bit space like real random
    // pseudonyms — sequential small integers would all be "closest"
    // to nothing and degenerate the sampler's closeness rule.
    const PseudonymValue value = next_value++ * 0x9E3779B97F4A7C15ull;
    registry[value] = owner;
    return PseudonymRecord{value, clock + lifetime};
  }
  std::optional<NodeId> resolve(PseudonymValue value) override {
    const auto it = registry.find(value);
    return it == registry.end() ? std::nullopt
                                : std::optional<NodeId>(it->second);
  }
  void send_shuffle_request(NodeId, NodeId,
                            std::vector<PseudonymRecord>) override {
    ++requests;
  }
  void send_shuffle_response(NodeId, NodeId,
                             std::vector<PseudonymRecord>) override {
    ++responses;
  }
  void schedule(double, sim::EventFn) override {}
};

OverlayParams params() {
  OverlayParams p;
  p.cache_size = 30;
  p.shuffle_length = 6;
  p.target_links = 8;
  p.pseudonym_lifetime = 50.0;
  return p;
}

TEST(OverlayNodeExtra, MinSlotsFloorApplies) {
  Env env;
  OverlayParams p = params();
  p.min_slots = 3;
  OverlayNode hub(0, p, {1, 2, 3, 4, 5, 6, 7, 8, 9}, env, Rng(1));
  EXPECT_EQ(hub.slot_capacity(), 3u);  // floor, not 0
}

TEST(OverlayNodeExtra, RejoinTriggersImmediateShuffle) {
  Env env;
  OverlayParams p = params();
  p.shuffle_on_rejoin = true;
  OverlayNode node(0, p, {1}, env, Rng(2));
  node.handle_online();            // initial start: no burst shuffle
  EXPECT_EQ(env.requests, 0u);
  node.handle_offline();
  env.clock = 10.0;
  node.handle_online();            // rejoin: immediate shuffle
  EXPECT_EQ(env.requests, 1u);
  EXPECT_EQ(node.counters().online_ticks, 1u);
}

TEST(OverlayNodeExtra, RejoinShuffleCanBeDisabled) {
  Env env;
  OverlayParams p = params();
  p.shuffle_on_rejoin = false;
  OverlayNode node(0, p, {1}, env, Rng(3));
  node.handle_online();
  node.handle_offline();
  node.handle_online();
  EXPECT_EQ(env.requests, 0u);
}

TEST(OverlayNodeExtra, InjectedRecordEntersCacheOnly) {
  Env env;
  OverlayNode node(0, params(), {1}, env, Rng(4));
  node.handle_online();
  const PseudonymRecord marker = env.mint_pseudonym(5, 20.0);
  node.inject_cache_record(marker);
  EXPECT_TRUE(node.cache().contains(marker.value));
  // Injection models a cache plant, not a sampled link.
  EXPECT_TRUE(node.pseudonym_links().empty());
}

TEST(OverlayNodeExtra, NoLinksNoShuffle) {
  Env env;
  OverlayNode loner(0, params(), {}, env, Rng(5));
  loner.handle_online();
  loner.shuffle_tick();
  // No trusted links and empty sampler: nothing to exchange with...
  EXPECT_EQ(env.requests, 0u);
  // ...but the tick still counts as an online period for Fig. 6.
  EXPECT_EQ(loner.counters().online_ticks, 1u);
}

TEST(OverlayNodeExtra, ResponsesCountSeparatelyFromRequests) {
  Env env;
  OverlayNode node(0, params(), {1}, env, Rng(6));
  node.handle_online();
  node.handle_shuffle_request(1, {env.mint_pseudonym(9, 20.0)});
  node.handle_shuffle_request(1, {env.mint_pseudonym(8, 20.0)});
  EXPECT_EQ(env.responses, 2u);
  EXPECT_EQ(node.counters().responses_sent, 2u);
  EXPECT_EQ(node.counters().requests_sent, 0u);
  EXPECT_EQ(node.counters().messages_sent(), 2u);
}

TEST(OverlayNodeExtra, OfflineNodeIgnoresTraffic) {
  Env env;
  OverlayNode node(0, params(), {1}, env, Rng(7));
  node.handle_online();
  node.handle_offline();
  node.handle_shuffle_request(1, {env.mint_pseudonym(9, 20.0)});
  node.handle_shuffle_response({env.mint_pseudonym(8, 20.0)});
  EXPECT_EQ(env.responses, 0u);
  EXPECT_EQ(node.cache().size(), 0u);
}

TEST(OverlayNodeExtra, MaxOutDegreeTracked) {
  Env env;
  OverlayNode node(0, params(), {1, 2}, env, Rng(8));
  node.handle_online();
  std::vector<PseudonymRecord> batch;
  for (NodeId peer = 10; peer < 30; ++peer)
    batch.push_back(env.mint_pseudonym(peer, 40.0));
  node.handle_shuffle_request(1, batch);
  node.shuffle_tick();
  // trust degree 2 + up to 6 slots (target 8 - 2); the slots hold the
  // closest of 20 spread values per reference, occasionally sharing a
  // winner.
  EXPECT_EQ(node.slot_capacity(), 6u);
  EXPECT_GE(node.counters().max_out_degree, 6u);
  EXPECT_LE(node.counters().max_out_degree, 8u);
}

}  // namespace
}  // namespace ppo::overlay
