// X25519 against RFC 7748 §5.2 / §6.1 vectors, plus Diffie-Hellman
// agreement properties.
#include <gtest/gtest.h>

#include "crypto/x25519.hpp"

namespace ppo::crypto {
namespace {

X25519Key key_from_hex(const std::string& hex) {
  const Bytes raw = from_hex(hex);
  X25519Key key{};
  std::copy(raw.begin(), raw.end(), key.begin());
  return key;
}

std::string key_hex(const X25519Key& k) {
  return to_hex(BytesView(k.data(), k.size()));
}

TEST(X25519, Rfc7748Vector1) {
  const X25519Key scalar = key_from_hex(
      "a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
  const X25519Key point = key_from_hex(
      "e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
  EXPECT_EQ(key_hex(x25519(scalar, point)),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552");
}

TEST(X25519, Rfc7748Vector2) {
  const X25519Key scalar = key_from_hex(
      "4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
  const X25519Key point = key_from_hex(
      "e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
  EXPECT_EQ(key_hex(x25519(scalar, point)),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957");
}

TEST(X25519, Rfc7748DiffieHellman) {
  const X25519Key alice_priv = key_from_hex(
      "77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
  const X25519Key bob_priv = key_from_hex(
      "5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");

  const X25519Key alice_pub = x25519_public(alice_priv);
  const X25519Key bob_pub = x25519_public(bob_priv);
  EXPECT_EQ(key_hex(alice_pub),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a");
  EXPECT_EQ(key_hex(bob_pub),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f");

  const X25519Key shared_a = x25519(alice_priv, bob_pub);
  const X25519Key shared_b = x25519(bob_priv, alice_pub);
  EXPECT_EQ(shared_a, shared_b);
  EXPECT_EQ(key_hex(shared_a),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742");
}

TEST(X25519, KeypairAgreementForArbitrarySeeds) {
  for (std::uint8_t fill = 1; fill < 8; ++fill) {
    X25519Key seed_a{}, seed_b{};
    seed_a.fill(fill);
    seed_b.fill(static_cast<std::uint8_t>(0x40 + fill));
    const auto a = x25519_keypair(seed_a);
    const auto b = x25519_keypair(seed_b);
    EXPECT_EQ(x25519(a.private_key, b.public_key),
              x25519(b.private_key, a.public_key));
    EXPECT_NE(a.public_key, b.public_key);
  }
}

}  // namespace
}  // namespace ppo::crypto
