// Pseudonym primitives and the ideal pseudonym service (§III-B/C).
#include <gtest/gtest.h>

#include <set>

#include "privacylink/pseudonym.hpp"
#include "privacylink/pseudonym_service.hpp"

namespace ppo::privacylink {
namespace {

TEST(PseudonymValue, RespectsBitWidth) {
  Rng rng(1);
  for (unsigned bits : {8u, 16u, 32u, 63u}) {
    for (int i = 0; i < 200; ++i) {
      const PseudonymValue v = random_pseudonym_value(rng, bits);
      EXPECT_LT(v, 1ull << bits);
    }
  }
  // 64-bit values should occasionally exceed 2^63.
  bool large_seen = false;
  for (int i = 0; i < 200; ++i)
    large_seen |= (random_pseudonym_value(rng, 64) >= (1ull << 63));
  EXPECT_TRUE(large_seen);
}

TEST(PseudonymValue, RejectsBadWidth) {
  Rng rng(1);
  EXPECT_THROW(random_pseudonym_value(rng, 4), CheckError);
  EXPECT_THROW(random_pseudonym_value(rng, 65), CheckError);
}

TEST(PseudonymDistance, Symmetric) {
  EXPECT_EQ(pseudonym_distance(10, 3), 7u);
  EXPECT_EQ(pseudonym_distance(3, 10), 7u);
  EXPECT_EQ(pseudonym_distance(5, 5), 0u);
}

TEST(PseudonymRecord, Validity) {
  const PseudonymRecord r{42, 10.0};
  EXPECT_TRUE(r.valid_at(0.0));
  EXPECT_TRUE(r.valid_at(9.999));
  EXPECT_FALSE(r.valid_at(10.0));
  EXPECT_FALSE(r.valid_at(11.0));
}

TEST(PseudonymService, CreateAndResolve) {
  PseudonymService service;
  Rng rng(2);
  const PseudonymRecord r = service.create(7, 0.0, 90.0, rng);
  EXPECT_DOUBLE_EQ(r.expiry, 90.0);
  EXPECT_EQ(service.resolve(r.value, 0.0), std::optional<NodeId>(7));
  EXPECT_EQ(service.resolve(r.value, 89.9), std::optional<NodeId>(7));
}

TEST(PseudonymService, ExpiredPseudonymUnroutable) {
  PseudonymService service;
  Rng rng(3);
  const PseudonymRecord r = service.create(7, 0.0, 90.0, rng);
  EXPECT_EQ(service.resolve(r.value, 90.0), std::nullopt);
  EXPECT_FALSE(service.alive(r.value, 90.0));
  // Expired entries get garbage-collected on resolution.
  EXPECT_EQ(service.registered_count(), 0u);
}

TEST(PseudonymService, UnknownValueUnroutable) {
  PseudonymService service;
  EXPECT_EQ(service.resolve(0xdeadbeef, 0.0), std::nullopt);
}

TEST(PseudonymService, RenewalKeepsOldPseudonymAliveUntilTtl) {
  PseudonymService service;
  Rng rng(4);
  const PseudonymRecord old_record = service.create(3, 0.0, 50.0, rng);
  const PseudonymRecord new_record = service.create(3, 40.0, 50.0, rng);
  EXPECT_NE(old_record.value, new_record.value);
  EXPECT_EQ(service.resolve(old_record.value, 45.0), std::optional<NodeId>(3));
  EXPECT_EQ(service.resolve(new_record.value, 45.0), std::optional<NodeId>(3));
  EXPECT_EQ(service.resolve(old_record.value, 55.0), std::nullopt);
  EXPECT_EQ(service.resolve(new_record.value, 55.0), std::optional<NodeId>(3));
}

TEST(PseudonymService, NarrowWidthAvoidsLiveCollisions) {
  PseudonymService service(8);  // only 256 possible values
  Rng rng(5);
  std::set<PseudonymValue> seen;
  for (NodeId v = 0; v < 100; ++v) {
    const PseudonymRecord r = service.create(v, 0.0, 10.0, rng);
    EXPECT_TRUE(seen.insert(r.value).second) << "live collision";
  }
}

TEST(PseudonymService, ExpiredValuesAreReusable) {
  PseudonymService service(8);
  Rng rng(6);
  for (int round = 0; round < 10; ++round) {
    const double now = round * 20.0;
    for (NodeId v = 0; v < 50; ++v) service.create(v, now, 10.0, rng);
  }
  SUCCEED();  // no exhaustion throw
}

TEST(PseudonymService, GarbageCollection) {
  PseudonymService service;
  Rng rng(7);
  for (NodeId v = 0; v < 20; ++v) service.create(v, 0.0, 10.0, rng);
  for (NodeId v = 0; v < 20; ++v) service.create(v, 0.0, 100.0, rng);
  EXPECT_EQ(service.registered_count(), 40u);
  service.collect_garbage(50.0);
  EXPECT_EQ(service.registered_count(), 20u);
}

}  // namespace
}  // namespace ppo::privacylink
