// Time-varying loss profiles (robustness extension): Gilbert-Elliott
// burst loss and the diurnal sinusoid — enabled() gating, validation,
// the pre-materialized chain's stationary statistics, additive
// composition, determinism across instances, and empirical loss
// through the FaultyTransport.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "fault/faulty_transport.hpp"
#include "privacylink/transport.hpp"
#include "sim/simulator.hpp"

namespace ppo::fault {
namespace {

using privacylink::NodeId;

struct Fixture {
  sim::Simulator sim;
  std::vector<char> online;
  privacylink::Transport inner;
  FaultyTransport faulty;

  Fixture(std::size_t n, FaultPlan plan)
      : online(n, 1),
        inner(sim, {.min_latency = 0.01, .max_latency = 0.01}, Rng(7),
              [this](NodeId v) { return online[v] != 0; }),
        faulty(sim, inner, plan, n) {}
};

FaultPlan ge_plan(double p_gb, double p_bg, double good, double bad,
                  double horizon) {
  FaultPlan plan;
  plan.gilbert_elliott.p_good_to_bad = p_gb;
  plan.gilbert_elliott.p_bad_to_good = p_bg;
  plan.gilbert_elliott.good_drop = good;
  plan.gilbert_elliott.bad_drop = bad;
  plan.gilbert_elliott.step = 1.0;
  plan.gilbert_elliott.horizon = horizon;
  return plan;
}

TEST(FaultProfiles, EnabledGating) {
  GilbertElliottProfile ge;
  EXPECT_FALSE(ge.enabled());
  ge.bad_drop = 0.5;
  EXPECT_FALSE(ge.enabled());  // zero horizon: nothing materialized
  ge.horizon = 100.0;
  EXPECT_TRUE(ge.enabled());

  DiurnalProfile diurnal;
  EXPECT_FALSE(diurnal.enabled());
  diurnal.amplitude = 0.3;
  EXPECT_FALSE(diurnal.enabled());  // zero period
  diurnal.period = 100.0;
  EXPECT_TRUE(diurnal.enabled());

  // Either profile alone arms the plan.
  FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  plan.gilbert_elliott = ge;
  EXPECT_TRUE(plan.enabled());
  FaultPlan sinus;
  sinus.diurnal = diurnal;
  EXPECT_TRUE(sinus.enabled());
}

TEST(FaultProfiles, ValidateRejectsNonsense) {
  FaultPlan bad_prob = ge_plan(1.5, 0.5, 0.0, 0.5, 100.0);
  EXPECT_THROW(bad_prob.validate(), CheckError);

  FaultPlan bad_drop = ge_plan(0.2, 0.2, 0.0, 1.5, 100.0);
  EXPECT_THROW(bad_drop.validate(), CheckError);

  FaultPlan zero_step = ge_plan(0.2, 0.2, 0.0, 0.5, 100.0);
  zero_step.gilbert_elliott.step = 0.0;
  EXPECT_THROW(zero_step.validate(), CheckError);

  FaultPlan amp;
  amp.diurnal.amplitude = 1.5;
  amp.diurnal.period = 10.0;
  EXPECT_THROW(amp.validate(), CheckError);

  // In-range profiles pass.
  ge_plan(0.2, 0.4, 0.0, 0.5, 100.0).validate();
}

TEST(FaultProfiles, StationaryBadFractionMatchesChain) {
  // p_gb = 0.2, p_bg = 0.4: the chain spends 1/3 of its steps bad.
  const FaultPlan plan = ge_plan(0.2, 0.4, 0.0, 0.5, 20000.0);
  EXPECT_NEAR(plan.gilbert_elliott.stationary_bad(), 1.0 / 3.0, 1e-12);

  Fixture fx(2, plan);
  std::size_t bad_steps = 0, steps = 0;
  for (double t = 0.5; t < 20000.0; t += 1.0, ++steps)
    bad_steps += fx.faulty.profile_extra_drop(t) > 0.25;
  const double empirical =
      static_cast<double>(bad_steps) / static_cast<double>(steps);
  EXPECT_NEAR(empirical, 1.0 / 3.0, 0.03);

  // Queries past the horizon freeze in the final materialized step
  // instead of reading out of bounds.
  const double last = fx.faulty.profile_extra_drop(20000.0);
  EXPECT_EQ(fx.faulty.profile_extra_drop(1e9), last);
}

TEST(FaultProfiles, ChainIsDeterministicPerSeed) {
  const FaultPlan plan = ge_plan(0.3, 0.3, 0.1, 0.6, 500.0);
  Fixture a(2, plan), b(2, plan);
  for (double t = 0.5; t < 500.0; t += 1.0)
    EXPECT_EQ(a.faulty.profile_extra_drop(t), b.faulty.profile_extra_drop(t));

  FaultPlan reseeded = plan;
  reseeded.seed = 0x5EED ^ 0xFF;
  Fixture c(2, reseeded);
  bool differs = false;
  for (double t = 0.5; t < 500.0 && !differs; t += 1.0)
    differs = a.faulty.profile_extra_drop(t) != c.faulty.profile_extra_drop(t);
  EXPECT_TRUE(differs);
}

TEST(FaultProfiles, DiurnalPeakAndTrough) {
  FaultPlan plan;
  plan.diurnal.amplitude = 0.4;
  plan.diurnal.period = 100.0;
  Fixture fx(2, plan);
  // amplitude * 0.5 * (1 + sin(2 pi t / period)): peak at t = 25,
  // trough at t = 75, half-amplitude at t = 0.
  EXPECT_NEAR(fx.faulty.profile_extra_drop(25.0), 0.4, 1e-9);
  EXPECT_NEAR(fx.faulty.profile_extra_drop(75.0), 0.0, 1e-9);
  EXPECT_NEAR(fx.faulty.profile_extra_drop(0.0), 0.2, 1e-9);
}

TEST(FaultProfiles, ProfilesComposeAdditively) {
  // A GE chain pinned good (p_gb = 0) contributes its constant
  // good_drop; the diurnal sinusoid rides on top.
  FaultPlan plan = ge_plan(0.0, 0.0, 0.1, 0.9, 1000.0);
  plan.diurnal.amplitude = 0.4;
  plan.diurnal.period = 100.0;
  Fixture fx(2, plan);
  EXPECT_NEAR(fx.faulty.profile_extra_drop(25.0), 0.1 + 0.4, 1e-9);
  EXPECT_NEAR(fx.faulty.profile_extra_drop(75.0), 0.1, 1e-9);
}

TEST(FaultProfiles, EmpiricalLossTracksBadState) {
  // Chain pinned bad from the second step on (p_gb = 1, p_bg = 0) with
  // certain loss while bad: every message sent past t = 1 is dropped,
  // while the t < 1 (good, zero-loss) sends all deliver.
  const FaultPlan plan = ge_plan(1.0, 0.0, 0.0, 1.0, 1000.0);
  Fixture fx(2, plan);

  std::size_t early = 0, late = 0;
  for (int i = 0; i < 20; ++i)
    fx.sim.schedule_at_for(0, 0.2, [&] {
      fx.faulty.send(0, 1, [&] { ++early; });
    });
  for (int i = 0; i < 50; ++i)
    fx.sim.schedule_at_for(0, 10.0 + i, [&] {
      fx.faulty.send(0, 1, [&] { ++late; });
    });
  fx.sim.run_all();

  EXPECT_EQ(early, 20u);
  EXPECT_EQ(late, 0u);
  EXPECT_EQ(fx.faulty.counters().injected_drops, 50u);
}

TEST(FaultProfiles, ModerateLossIsStatisticallyPlausible) {
  // Pinned bad with 40% extra loss: over 2000 sends the delivered
  // fraction concentrates near 0.6.
  FaultPlan plan = ge_plan(1.0, 0.0, 0.0, 0.4, 5000.0);
  plan.per_link_streams = true;  // sharded-compatible stream form
  Fixture fx(2, plan);

  std::size_t delivered = 0;
  const std::size_t sends = 2000;
  for (std::size_t i = 0; i < sends; ++i)
    fx.sim.schedule_at_for(0, 5.0 + static_cast<double>(i), [&] {
      fx.faulty.send(0, 1, [&] { ++delivered; });
    });
  fx.sim.run_all();

  const double rate =
      static_cast<double>(delivered) / static_cast<double>(sends);
  EXPECT_NEAR(rate, 0.6, 0.05);
  EXPECT_EQ(fx.faulty.counters().injected_drops, sends - delivered);
}

}  // namespace
}  // namespace ppo::fault
