// Ideal anonymity-service transport: latency, online gating, counters.
#include <gtest/gtest.h>

#include "privacylink/transport.hpp"
#include "sim/simulator.hpp"

namespace ppo::privacylink {
namespace {

struct Fixture {
  sim::Simulator sim;
  std::vector<char> online;
  Transport transport;

  explicit Fixture(std::size_t n, TransportOptions opts = {})
      : online(n, 1),
        transport(sim, opts, Rng(7),
                  [this](NodeId v) { return online[v] != 0; }) {}
};

TEST(Transport, DeliversWithinLatencyWindow) {
  Fixture fx(2, {.min_latency = 0.01, .max_latency = 0.05});
  double delivered_at = -1.0;
  fx.transport.send(0, 1, [&] { delivered_at = fx.sim.now(); });
  fx.sim.run_all();
  EXPECT_GE(delivered_at, 0.01);
  EXPECT_LE(delivered_at, 0.05);
  EXPECT_EQ(fx.transport.messages_sent(), 1u);
  EXPECT_EQ(fx.transport.messages_delivered(), 1u);
}

TEST(Transport, OfflineSenderCannotSend) {
  Fixture fx(2);
  fx.online[0] = 0;
  bool delivered = false;
  EXPECT_FALSE(fx.transport.send(0, 1, [&] { delivered = true; }));
  fx.sim.run_all();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(fx.transport.messages_sent(), 0u);
}

TEST(Transport, OfflineDestinationDropsMessage) {
  Fixture fx(2);
  fx.online[1] = 0;
  bool delivered = false;
  EXPECT_TRUE(fx.transport.send(0, 1, [&] { delivered = true; }));
  fx.sim.run_all();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(fx.transport.messages_sent(), 1u);
  EXPECT_EQ(fx.transport.messages_dropped(), 1u);
}

TEST(Transport, DestinationCheckedAtArrivalTime) {
  // Destination goes offline while the message is in flight.
  Fixture fx(2, {.min_latency = 1.0, .max_latency = 1.0});
  bool delivered = false;
  fx.transport.send(0, 1, [&] { delivered = true; });
  fx.sim.schedule_at(0.5, [&] { fx.online[1] = 0; });
  fx.sim.run_all();
  EXPECT_FALSE(delivered);

  // And the reverse: it comes online just in time.
  fx.online[1] = 0;
  fx.transport.send(0, 1, [&] { delivered = true; });
  fx.sim.schedule_after(0.5, [&] { fx.online[1] = 1; });
  fx.sim.run_all();
  EXPECT_TRUE(delivered);
}

TEST(Transport, ZeroLatencyAllowed) {
  Fixture fx(2, {.min_latency = 0.0, .max_latency = 0.0});
  bool delivered = false;
  fx.transport.send(0, 1, [&] { delivered = true; });
  fx.sim.run_all();
  EXPECT_TRUE(delivered);
}

TEST(Transport, InvalidLatencyWindowThrows) {
  sim::Simulator sim;
  EXPECT_THROW(Transport(sim, {.min_latency = 0.5, .max_latency = 0.1},
                         Rng(1), [](NodeId) { return true; }),
               CheckError);
}

}  // namespace
}  // namespace ppo::privacylink
