// Connected components and the paper's disconnection metric.
#include <gtest/gtest.h>

#include "graph/components.hpp"
#include "graph/generators.hpp"

namespace ppo::graph {
namespace {

TEST(Components, SingleComponentRing) {
  const Graph g = ring(10);
  const Components c = connected_components(g);
  EXPECT_EQ(c.count(), 1u);
  EXPECT_EQ(c.largest_size(), 10u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_DOUBLE_EQ(fraction_disconnected(g), 0.0);
}

TEST(Components, TwoIslands) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  const Components c = connected_components(g);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_EQ(c.largest_size(), 3u);
  EXPECT_FALSE(is_connected(g));
  EXPECT_DOUBLE_EQ(fraction_disconnected(g), 2.0 / 5.0);
}

TEST(Components, IsolatedNodesAreOwnComponents) {
  const Graph g(4);  // no edges
  const Components c = connected_components(g);
  EXPECT_EQ(c.count(), 4u);
  EXPECT_DOUBLE_EQ(fraction_disconnected(g), 3.0 / 4.0);
}

TEST(Components, MaskRemovesCutVertex) {
  // 0-1-2 path: masking out node 1 splits the rest.
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  NodeMask mask(3, true);
  mask.set(1, false);
  const Components c = connected_components(g, mask);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_EQ(c.component_of[1], Components::kExcluded);
  EXPECT_DOUBLE_EQ(fraction_disconnected(g, mask), 0.5);
}

TEST(Components, EmptyMaskGraph) {
  const Graph g = ring(5);
  const NodeMask mask(5, false);
  const Components c = connected_components(g, mask);
  EXPECT_EQ(c.count(), 0u);
  EXPECT_DOUBLE_EQ(fraction_disconnected(g, mask), 0.0);
  EXPECT_TRUE(is_connected(g, mask));
}

TEST(Components, StarLosesAllLeavesWithoutHub) {
  const Graph g = star(6);
  NodeMask mask(7, true);
  mask.set(0, false);  // remove hub
  const Components c = connected_components(g, mask);
  EXPECT_EQ(c.count(), 6u);
  EXPECT_DOUBLE_EQ(fraction_disconnected(g, mask), 5.0 / 6.0);
}

TEST(Components, ComponentIdsArePartition) {
  Rng rng(5);
  const Graph g = erdos_renyi_gnm(200, 150, rng);
  const Components c = connected_components(g);
  std::size_t total = 0;
  for (std::size_t size : c.sizes) total += size;
  EXPECT_EQ(total, 200u);
  for (NodeId v = 0; v < 200; ++v) {
    ASSERT_NE(c.component_of[v], Components::kExcluded);
    ASSERT_LT(c.component_of[v], c.count());
  }
}

}  // namespace
}  // namespace ppo::graph
