// Churn models (Yao et al.) and the simulator churn driver.
#include <gtest/gtest.h>

#include "churn/churn_driver.hpp"
#include "churn/churn_model.hpp"
#include "common/stats.hpp"
#include "sim/simulator.hpp"

namespace ppo::churn {
namespace {

TEST(ExponentialChurn, AvailabilityFormula) {
  const ExponentialChurn model(10.0, 30.0);
  EXPECT_DOUBLE_EQ(model.availability(), 0.25);
}

TEST(ExponentialChurn, FromAvailabilityInverts) {
  for (double alpha : {0.125, 0.25, 0.5, 0.75}) {
    const auto model = ExponentialChurn::from_availability(alpha, 30.0);
    EXPECT_NEAR(model.availability(), alpha, 1e-12);
    EXPECT_DOUBLE_EQ(model.mean_offline_time(), 30.0);
  }
}

TEST(ExponentialChurn, FullAvailabilityHasNoOfflineTime) {
  const auto model = ExponentialChurn::from_availability(1.0, 30.0);
  EXPECT_DOUBLE_EQ(model.availability(), 1.0);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(model.next_offline_duration(rng), 0.0);
}

TEST(ExponentialChurn, DurationsMatchMeans) {
  const ExponentialChurn model(10.0, 30.0);
  Rng rng(2);
  RunningStats on, off;
  for (int i = 0; i < 30000; ++i) {
    on.add(model.next_online_duration(rng));
    off.add(model.next_offline_duration(rng));
  }
  EXPECT_NEAR(on.mean(), 10.0, 0.3);
  EXPECT_NEAR(off.mean(), 30.0, 0.9);
}

TEST(ParetoChurn, MeansMatch) {
  const ParetoChurn model(3.0, 10.0, 30.0);
  Rng rng(3);
  RunningStats on, off;
  for (int i = 0; i < 60000; ++i) {
    on.add(model.next_online_duration(rng));
    off.add(model.next_offline_duration(rng));
  }
  EXPECT_NEAR(on.mean(), 10.0, 0.4);
  EXPECT_NEAR(off.mean(), 30.0, 1.2);
  EXPECT_NEAR(model.availability(), 0.25, 1e-12);
}

TEST(ParetoChurn, RejectsShapeBelowOne) {
  EXPECT_THROW(ParetoChurn(0.9, 10.0, 30.0), CheckError);
}

TEST(TraceChurn, ReplaysCyclically) {
  const TraceChurn model({1.0, 2.0}, {5.0});
  Rng rng(4);
  EXPECT_DOUBLE_EQ(model.next_online_duration(rng), 1.0);
  EXPECT_DOUBLE_EQ(model.next_online_duration(rng), 2.0);
  EXPECT_DOUBLE_EQ(model.next_online_duration(rng), 1.0);
  EXPECT_DOUBLE_EQ(model.next_offline_duration(rng), 5.0);
  EXPECT_DOUBLE_EQ(model.mean_online_time(), 1.5);
  EXPECT_DOUBLE_EQ(model.mean_offline_time(), 5.0);
}

TEST(ChurnDriver, StationaryFractionNearAlpha) {
  sim::Simulator sim;
  const auto model = ExponentialChurn::from_availability(0.25, 30.0);
  ChurnDriver driver(sim, 4000, model, Rng(5));
  driver.start({});
  const double initial =
      static_cast<double>(driver.online_count()) / 4000.0;
  EXPECT_NEAR(initial, 0.25, 0.03);

  // Run well past mixing time; the stationary fraction must persist.
  sim.run_until(300.0);
  const double later = static_cast<double>(driver.online_count()) / 4000.0;
  EXPECT_NEAR(later, 0.25, 0.03);
}

TEST(ChurnDriver, CallbacksTrackMask) {
  sim::Simulator sim;
  const auto model = ExponentialChurn::from_availability(0.5, 5.0);
  ChurnDriver driver(sim, 200, model, Rng(6));
  std::size_t transitions = 0;
  driver.start(ChurnCallbacks{
      .on_online =
          [&](NodeId v) {
            EXPECT_TRUE(driver.is_online(v));
            ++transitions;
          },
      .on_offline =
          [&](NodeId v) {
            EXPECT_FALSE(driver.is_online(v));
            ++transitions;
          },
  });
  sim.run_until(100.0);
  EXPECT_GT(transitions, 500u);  // plenty of churn at these scales
}

TEST(ChurnDriver, StartTwiceThrows) {
  sim::Simulator sim;
  const auto model = ExponentialChurn::from_availability(0.5, 5.0);
  ChurnDriver driver(sim, 10, model, Rng(7));
  driver.start({});
  EXPECT_THROW(driver.start({}), CheckError);
}

TEST(ChurnDriver, PermanentFailureSticks) {
  sim::Simulator sim;
  const auto model = ExponentialChurn::from_availability(0.9, 2.0);
  ChurnDriver driver(sim, 50, model, Rng(8));
  driver.start({});
  sim.run_until(1.0);
  for (NodeId v = 0; v < 50; v += 2) driver.fail_permanently(v);
  sim.run_until(200.0);
  for (NodeId v = 0; v < 50; v += 2) EXPECT_FALSE(driver.is_online(v));
  // Unfailed nodes are mostly online at alpha = 0.9.
  std::size_t online_odd = 0;
  for (NodeId v = 1; v < 50; v += 2) online_odd += driver.is_online(v);
  EXPECT_GT(online_odd, 15u);
}

TEST(ChurnDriver, DeterministicUnderSeed) {
  auto run = [](std::uint64_t seed) {
    sim::Simulator sim;
    const auto model = ExponentialChurn::from_availability(0.5, 10.0);
    ChurnDriver driver(sim, 100, model, Rng(seed));
    driver.start({});
    sim.run_until(50.0);
    std::vector<bool> mask;
    for (NodeId v = 0; v < 100; ++v) mask.push_back(driver.is_online(v));
    return mask;
  };
  EXPECT_EQ(run(9), run(9));
  EXPECT_NE(run(9), run(10));
}

}  // namespace
}  // namespace ppo::churn
