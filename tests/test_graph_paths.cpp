// BFS distances, average path length and the paper's normalized
// path-length metric (§IV-C).
#include <gtest/gtest.h>

#include "graph/components.hpp"
#include "graph/degree.hpp"
#include "graph/generators.hpp"
#include "graph/paths.hpp"

namespace ppo::graph {
namespace {

TEST(Bfs, DistancesOnPath) {
  const Graph g = path_graph(5);
  const auto dist = bfs_distances(g, 0);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(dist[v], v);
}

TEST(Bfs, UnreachableMarked) {
  Graph g(4);
  g.add_edge(0, 1);
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kUnreachable);
  EXPECT_EQ(dist[3], kUnreachable);
}

TEST(Bfs, MaskBlocksTraversal) {
  const Graph g = path_graph(5);
  NodeMask mask(5, true);
  mask.set(2, false);
  const auto dist = bfs_distances(g, 0, mask);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kUnreachable);
  EXPECT_EQ(dist[3], kUnreachable);
}

TEST(Bfs, ExcludedSourceThrows) {
  const Graph g = path_graph(3);
  NodeMask mask(3, false);
  EXPECT_THROW(bfs_distances(g, 0, mask), CheckError);
}

TEST(AveragePathLength, CompleteGraphIsOne) {
  Rng rng(1);
  const Graph g = complete(8);
  EXPECT_NEAR(average_path_length(g, rng), 1.0, 1e-12);
}

TEST(AveragePathLength, PathGraphExact) {
  Rng rng(1);
  // Path on 4 nodes: distances 1,2,3,1,2,1 -> mean = 10/6.
  const Graph g = path_graph(4);
  EXPECT_NEAR(average_path_length(g, rng), 10.0 / 6.0, 1e-12);
}

TEST(AveragePathLength, UsesLargestComponentOnly) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);  // path of 4
  g.add_edge(4, 5);  // separate pair
  Rng rng(1);
  EXPECT_NEAR(average_path_length(g, rng), 10.0 / 6.0, 1e-12);
}

TEST(AveragePathLength, SampledEstimateCloseToExact) {
  Rng rng(7);
  const Graph g = erdos_renyi_gnm(600, 3000, rng);
  Rng r1(11), r2(11);
  const double exact = average_path_length(g, r1, {}, 0, 10'000);
  const double sampled = average_path_length(g, r2, {}, 64, 10);
  EXPECT_NEAR(sampled, exact, exact * 0.05);
}

TEST(NormalizedPathLength, EqualsScaledAplWhenConnected) {
  Rng rng(1);
  const Graph g = complete(10);
  // APL = 1, LCC = 10, total = 10 -> normalized = 1.
  EXPECT_NEAR(normalized_average_path_length(g, rng, 10), 1.0, 1e-12);
}

TEST(NormalizedPathLength, PenalizesFragmentation) {
  // Largest component has 3 of 12 total nodes: a short APL measured in
  // the fragment must be scaled up by 12/3.
  Graph g(12);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  Rng rng(1);
  const double apl = 4.0 / 3.0;  // distances 1,2,1 in the triangle path
  EXPECT_NEAR(normalized_average_path_length(g, rng, 12), apl / 3.0 * 12.0,
              1e-12);
}

TEST(NormalizedPathLength, TrivialComponentGetsMaxPenalty) {
  const Graph g(5);  // all isolated
  Rng rng(1);
  EXPECT_DOUBLE_EQ(normalized_average_path_length(g, rng, 5), 5.0);
}

TEST(DiameterEstimate, PathGraph) {
  const Graph g = path_graph(9);
  Rng rng(3);
  EXPECT_EQ(diameter_estimate(g, rng), 8u);
}

TEST(DiameterEstimate, RandomGraphIsSmall) {
  Rng rng(5);
  const Graph g = erdos_renyi_gnm(500, 5000, rng);
  Rng r(3);
  const auto d = diameter_estimate(g, r);
  EXPECT_GE(d, 2u);
  EXPECT_LE(d, 8u);
}

TEST(MaskedDegree, CountsOnlyIncludedNeighbors) {
  const Graph g = star(4);
  NodeMask mask(5, true);
  mask.set(1, false);
  mask.set(2, false);
  EXPECT_EQ(masked_degree(g, 0, mask), 2u);
  EXPECT_EQ(masked_degree(g, 3, mask), 1u);
}

TEST(DegreeHistogram, StarGraph) {
  const Graph g = star(5);
  const auto h = degree_histogram(g);
  EXPECT_EQ(h.count(5), 1u);  // hub
  EXPECT_EQ(h.count(1), 5u);  // leaves
  EXPECT_EQ(h.total(), 6u);
}

}  // namespace
}  // namespace ppo::graph
