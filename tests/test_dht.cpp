// Chord-style DHT substrate + the DHT-backed pseudonym service
// (§III-B's storage-service realization).
#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"
#include "dht/chord.hpp"
#include "dht/dht_pseudonym_service.hpp"

namespace ppo::dht {
namespace {

TEST(Chord, OwnershipIsSuccessor) {
  Rng rng(1);
  ChordRing ring({.num_nodes = 32}, rng);
  // The owner of a node's own id is that node.
  for (std::size_t i = 0; i < 32; ++i) {
    const auto res = ring.lookup(ring.node_id(i));
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.owner, i);
  }
  // A key one past node i belongs to the next node.
  const auto res = ring.lookup(ring.node_id(5) + 1);
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.owner, 6u);
}

TEST(Chord, LookupsAgreeFromEveryStart) {
  Rng rng(2);
  ChordRing ring({.num_nodes = 48}, rng);
  Rng keys(3);
  for (int trial = 0; trial < 30; ++trial) {
    const Key key = keys.next_u64();
    const auto reference = ring.lookup(key, 0);
    ASSERT_TRUE(reference.ok);
    for (std::size_t start = 1; start < 48; start += 7) {
      const auto res = ring.lookup(key, start);
      ASSERT_TRUE(res.ok);
      EXPECT_EQ(res.owner, reference.owner);
    }
  }
}

TEST(Chord, HopsAreLogarithmic) {
  Rng rng(4);
  ChordRing ring({.num_nodes = 512}, rng);
  Rng keys(5);
  RunningStats hops;
  for (int trial = 0; trial < 300; ++trial) {
    const auto res = ring.lookup(keys.next_u64(),
                                 keys.uniform_u64(512));
    ASSERT_TRUE(res.ok);
    hops.add(static_cast<double>(res.hops));
  }
  // Chord bound: ~log2(n)/2 expected, log2(n) worst; 9 = log2(512).
  EXPECT_LT(hops.mean(), 9.0);
  EXPECT_LE(hops.max(), 2.0 * 9.0);
}

TEST(Chord, PutGetRoundTrip) {
  Rng rng(6);
  ChordRing ring({.num_nodes = 16, .replication = 3}, rng);
  const crypto::Bytes value = crypto::to_bytes("registration");
  ASSERT_TRUE(ring.put(0xABCD, value).has_value());
  const auto got = ring.get(0xABCD);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, value);
  EXPECT_FALSE(ring.get(0xDCBA).has_value());
  ring.erase(0xABCD);
  EXPECT_FALSE(ring.get(0xABCD).has_value());
}

TEST(Chord, ReplicationSurvivesOwnerFailure) {
  Rng rng(7);
  ChordRing ring({.num_nodes = 24, .replication = 3}, rng);
  const Key key = 0x1234567890ull;
  ring.put(key, crypto::to_bytes("survive me"));
  const auto owner = ring.lookup(key);
  ASSERT_TRUE(owner.ok);
  ring.fail_node(owner.owner);
  // A second replica holds the data; lookups route around the corpse.
  const auto got = ring.get(key);
  ASSERT_TRUE(got.has_value());
  const auto new_owner = ring.lookup(key);
  ASSERT_TRUE(new_owner.ok);
  EXPECT_NE(new_owner.owner, owner.owner);
}

TEST(Chord, ToleratesHeavyFailureForLookups) {
  Rng rng(8);
  ChordRing ring({.num_nodes = 64, .replication = 3}, rng);
  Rng pick(9);
  for (int i = 0; i < 32; ++i)
    ring.fail_node(pick.uniform_u64(64));
  ASSERT_GT(ring.num_alive(), 0u);
  Rng keys(10);
  for (int trial = 0; trial < 50; ++trial) {
    const auto res = ring.lookup(keys.next_u64());
    EXPECT_TRUE(res.ok);
    EXPECT_TRUE(ring.node_alive(res.owner));
  }
}

TEST(Chord, AllDeadFailsGracefully) {
  Rng rng(11);
  ChordRing ring({.num_nodes = 4}, rng);
  for (std::size_t i = 0; i < 4; ++i) ring.fail_node(i);
  EXPECT_FALSE(ring.lookup(42).ok);
  EXPECT_FALSE(ring.get(42).has_value());
  EXPECT_FALSE(ring.put(42, crypto::to_bytes("x")).has_value());
}

TEST(DhtPseudonymService, MatchesIdealServiceSemantics) {
  Rng ring_rng(12);
  ChordRing ring({.num_nodes = 32, .replication = 3}, ring_rng);
  DhtPseudonymService service(ring);
  Rng rng(13);

  const PseudonymRecord r = service.create(7, 0.0, 90.0, rng);
  EXPECT_DOUBLE_EQ(r.expiry, 90.0);
  EXPECT_EQ(service.resolve(r.value, 10.0), std::optional<NodeId>(7));
  EXPECT_TRUE(service.alive(r.value, 89.0));
  // TTL enforced by the storage layer.
  EXPECT_EQ(service.resolve(r.value, 90.0), std::nullopt);
  EXPECT_FALSE(service.alive(r.value, 91.0));
  // Unknown values are unroutable.
  EXPECT_EQ(service.resolve(0x5555, 0.0), std::nullopt);
  EXPECT_GT(service.operations(), 0u);
}

TEST(DhtPseudonymService, RegistrationsSurviveStorageChurn) {
  Rng ring_rng(14);
  ChordRing ring({.num_nodes = 40, .replication = 4}, ring_rng);
  DhtPseudonymService service(ring);
  Rng rng(15);

  std::vector<PseudonymRecord> records;
  for (NodeId owner = 0; owner < 30; ++owner)
    records.push_back(service.create(owner, 0.0, 100.0, rng));

  Rng pick(16);
  for (int i = 0; i < 10; ++i) ring.fail_node(pick.uniform_u64(40));

  std::size_t resolved = 0;
  for (NodeId owner = 0; owner < 30; ++owner)
    resolved +=
        (service.resolve(records[owner].value, 50.0) ==
         std::optional<NodeId>(owner));
  // Replication 4 with 25% storage failures: expect (almost) all to
  // survive; allow a sliver of bad luck.
  EXPECT_GE(resolved, 28u);
}

}  // namespace
}  // namespace ppo::dht
