// Cross-cutting graph property sweeps tying the generators to the
// metrics: small-world behaviour, sampling-parameter monotonicity,
// and expansion ordering — the structural facts the paper's argument
// rests on ("random graphs are known to exhibit good failure
// resilience and short path lengths", §III-A).
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/clustering.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/paths.hpp"
#include "graph/sampling.hpp"
#include "graph/socialgen.hpp"
#include "graph/spectral.hpp"

namespace ppo::graph {
namespace {

TEST(SmallWorld, RewiringShortensPathsBeforeKillingClustering) {
  // The Watts–Strogatz transition: a little rewiring collapses path
  // length while clustering stays high.
  Rng r0(1), r1(1);
  const Graph lattice = watts_strogatz(300, 4, 0.0, r0);
  const Graph rewired = watts_strogatz(300, 4, 0.1, r1);
  Rng m0(2), m1(2);
  EXPECT_LT(average_path_length(rewired, m1),
            0.6 * average_path_length(lattice, m0));
  EXPECT_GT(average_clustering(rewired), 0.5 * average_clustering(lattice));
}

TEST(RandomVsSocial, RandomGraphsExpandBetter) {
  // §III-A's premise, checked spectrally: an ER graph of the same
  // size/density expands better than a social (clustered, hub-heavy)
  // graph.
  Rng rng(3);
  SocialGraphOptions opts;
  opts.num_nodes = 4000;
  opts.sub_community_size = 50;
  opts.community_size = 400;
  const Graph social = synthetic_social_graph(opts, rng);
  Rng err(4);
  const Graph er = erdos_renyi_gnm(social.num_nodes(), social.num_edges(), err);
  Rng s1(5), s2(5);
  EXPECT_GT(spectral_gap(er, s1), spectral_gap(social, s2));
}

class SamplingFSweep : public ::testing::TestWithParam<double> {};

TEST_P(SamplingFSweep, SamplesConnectedAtEveryF) {
  const double f = GetParam();
  Rng rng(10);
  SocialGraphOptions opts;
  opts.num_nodes = 6000;
  opts.sub_community_size = 60;
  opts.community_size = 600;
  const Graph base = synthetic_social_graph(opts, rng);
  Rng srng(11);
  const Graph sample = invitation_sample(base, {.target_size = 600, .f = f}, srng);
  EXPECT_TRUE(is_connected(sample));
  EXPECT_EQ(sample.num_nodes(), 600u);
  // Denser than a tree, sparser than the base density bound.
  EXPECT_GE(sample.num_edges(), 599u);
}

INSTANTIATE_TEST_SUITE_P(Fs, SamplingFSweep,
                         ::testing::Values(0.0, 0.1, 0.3, 0.5, 0.8, 1.0));

}  // namespace
}  // namespace ppo::graph
