// Onion layering: round trips, hop-by-hop unwrapping, tampering.
#include <gtest/gtest.h>

#include "privacylink/onion.hpp"

namespace ppo::privacylink {
namespace {

crypto::X25519Key seed_key(std::uint8_t fill) {
  crypto::X25519Key k{};
  k.fill(fill);
  return k;
}

TEST(Onion, SingleHopRoundTrip) {
  Rng rng(1);
  const auto relay = crypto::x25519_keypair(seed_key(1));
  const crypto::Bytes payload = crypto::to_bytes("hello overlay");

  const crypto::Bytes wrapped = onion_wrap(
      {{kFinalHop, relay.public_key}},
      crypto::BytesView(payload.data(), payload.size()), rng);
  EXPECT_EQ(wrapped.size(), payload.size() + kOnionLayerOverhead);

  const auto layer = onion_unwrap(
      relay.private_key, crypto::BytesView(wrapped.data(), wrapped.size()));
  ASSERT_TRUE(layer.has_value());
  EXPECT_EQ(layer->next_hop, kFinalHop);
  EXPECT_EQ(layer->inner, payload);
}

TEST(Onion, ThreeHopChainUnwrapsInOrder) {
  Rng rng(2);
  const auto r0 = crypto::x25519_keypair(seed_key(1));
  const auto r1 = crypto::x25519_keypair(seed_key(2));
  const auto r2 = crypto::x25519_keypair(seed_key(3));
  const crypto::Bytes payload = crypto::to_bytes("dissident message");

  const crypto::Bytes wrapped = onion_wrap(
      {{1, r0.public_key}, {2, r1.public_key}, {kFinalHop, r2.public_key}},
      crypto::BytesView(payload.data(), payload.size()), rng);
  EXPECT_EQ(wrapped.size(), payload.size() + 3 * kOnionLayerOverhead);

  const auto l0 = onion_unwrap(r0.private_key,
                               crypto::BytesView(wrapped.data(), wrapped.size()));
  ASSERT_TRUE(l0.has_value());
  EXPECT_EQ(l0->next_hop, 1u);

  const auto l1 = onion_unwrap(
      r1.private_key, crypto::BytesView(l0->inner.data(), l0->inner.size()));
  ASSERT_TRUE(l1.has_value());
  EXPECT_EQ(l1->next_hop, 2u);

  const auto l2 = onion_unwrap(
      r2.private_key, crypto::BytesView(l1->inner.data(), l1->inner.size()));
  ASSERT_TRUE(l2.has_value());
  EXPECT_EQ(l2->next_hop, kFinalHop);
  EXPECT_EQ(l2->inner, payload);
}

TEST(Onion, WrongRelayKeyFails) {
  Rng rng(3);
  const auto relay = crypto::x25519_keypair(seed_key(1));
  const auto impostor = crypto::x25519_keypair(seed_key(9));
  const crypto::Bytes payload = crypto::to_bytes("x");
  const crypto::Bytes wrapped =
      onion_wrap({{kFinalHop, relay.public_key}},
                 crypto::BytesView(payload.data(), payload.size()), rng);
  EXPECT_FALSE(onion_unwrap(impostor.private_key,
                            crypto::BytesView(wrapped.data(), wrapped.size()))
                   .has_value());
}

TEST(Onion, TamperingDetected) {
  Rng rng(4);
  const auto relay = crypto::x25519_keypair(seed_key(1));
  const crypto::Bytes payload = crypto::to_bytes("integrity");
  crypto::Bytes wrapped =
      onion_wrap({{kFinalHop, relay.public_key}},
                 crypto::BytesView(payload.data(), payload.size()), rng);
  // Flip a ciphertext bit (past the 44-byte clear header).
  wrapped[50] ^= 0x80;
  EXPECT_FALSE(onion_unwrap(relay.private_key,
                            crypto::BytesView(wrapped.data(), wrapped.size()))
                   .has_value());
}

TEST(Onion, TruncatedInputRejected) {
  const auto relay = crypto::x25519_keypair(seed_key(1));
  const crypto::Bytes junk(10, 0xab);
  EXPECT_FALSE(onion_unwrap(relay.private_key,
                            crypto::BytesView(junk.data(), junk.size()))
                   .has_value());
}

TEST(Onion, RouteValidationEnforced) {
  Rng rng(5);
  const auto relay = crypto::x25519_keypair(seed_key(1));
  const crypto::Bytes payload = crypto::to_bytes("x");
  EXPECT_THROW(onion_wrap({}, crypto::BytesView(payload.data(), payload.size()), rng),
               CheckError);
  EXPECT_THROW(onion_wrap({{7, relay.public_key}},
                          crypto::BytesView(payload.data(), payload.size()), rng),
               CheckError);
}

TEST(Onion, IdenticalPayloadsProduceDistinctWrappings) {
  Rng rng(6);
  const auto relay = crypto::x25519_keypair(seed_key(1));
  const crypto::Bytes payload = crypto::to_bytes("same bytes");
  const auto a = onion_wrap({{kFinalHop, relay.public_key}},
                            crypto::BytesView(payload.data(), payload.size()), rng);
  const auto b = onion_wrap({{kFinalHop, relay.public_key}},
                            crypto::BytesView(payload.data(), payload.size()), rng);
  EXPECT_NE(a, b);  // fresh ephemeral key + nonce per message
}

}  // namespace
}  // namespace ppo::privacylink
