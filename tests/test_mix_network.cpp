// Mix-network substrate: end-to-end delivery, relay failure, replays.
#include <gtest/gtest.h>

#include "privacylink/mix_network.hpp"
#include "sim/simulator.hpp"

namespace ppo::privacylink {
namespace {

TEST(MixNetwork, DeliversThroughThreeHops) {
  sim::Simulator sim;
  MixNetwork mix(sim, {.num_relays = 8}, Rng(1));
  Rng rng(2);

  const auto route = mix.random_route(3, rng);
  const crypto::Bytes payload = crypto::to_bytes("hello through the mix");
  crypto::Bytes got;
  mix.send(route, payload, [&](crypto::Bytes p) { got = std::move(p); }, rng);
  sim.run_all();
  EXPECT_EQ(got, payload);
  EXPECT_EQ(mix.messages_forwarded(), 3u);
  EXPECT_EQ(mix.messages_dropped(), 0u);
}

TEST(MixNetwork, LatencyScalesWithHops) {
  sim::Simulator sim;
  MixOptions opts;
  opts.num_relays = 10;
  opts.min_hop_latency = opts.max_hop_latency = 0.01;
  MixNetwork mix(sim, opts, Rng(3));
  Rng rng(4);

  double t1 = 0, t5 = 0;
  mix.send(mix.random_route(1, rng), crypto::to_bytes("a"),
           [&](crypto::Bytes) { t1 = sim.now(); }, rng);
  sim.run_all();
  mix.send(mix.random_route(5, rng), crypto::to_bytes("b"),
           [&](crypto::Bytes) { t5 = sim.now() - t1; }, rng);
  sim.run_all();
  EXPECT_NEAR(t1, 0.02, 1e-9);       // entry hop + exit delivery
  EXPECT_NEAR(t5, 0.06, 1e-9);       // 5 relay hops + delivery
}

TEST(MixNetwork, DeadRelayDropsTraffic) {
  sim::Simulator sim;
  MixNetwork mix(sim, {.num_relays = 4}, Rng(5));
  Rng rng(6);
  const std::vector<RelayId> route{0, 1, 2};
  mix.fail_relay(1);
  bool delivered = false;
  mix.send(route, crypto::to_bytes("x"),
           [&](crypto::Bytes) { delivered = true; }, rng);
  sim.run_all();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(mix.messages_dropped(), 1u);
  EXPECT_FALSE(mix.relay_alive(1));
  EXPECT_TRUE(mix.relay_alive(0));
}

TEST(MixNetwork, RevivedRelayForwardsAgainWithSameIdentity) {
  sim::Simulator sim;
  MixNetwork mix(sim, {.num_relays = 4}, Rng(5));
  Rng rng(6);
  const std::vector<RelayId> route{0, 1, 2};

  const auto key_before = mix.relay_public_key(1);
  mix.fail_relay(1);
  EXPECT_EQ(mix.live_relay_count(), 3u);
  bool delivered = false;
  mix.send(route, crypto::to_bytes("x"),
           [&](crypto::Bytes) { delivered = true; }, rng);
  sim.run_all();
  EXPECT_FALSE(delivered);

  mix.revive_relay(1);
  EXPECT_TRUE(mix.relay_alive(1));
  EXPECT_EQ(mix.live_relay_count(), 4u);
  // A restart, not a fresh identity: the keypair survives the crash,
  // so senders can keep using the published key.
  EXPECT_EQ(mix.relay_public_key(1), key_before);
  mix.send(route, crypto::to_bytes("y"),
           [&](crypto::Bytes) { delivered = true; }, rng);
  sim.run_all();
  EXPECT_TRUE(delivered);
}

TEST(MixNetwork, RandomRouteAvoidsDeadRelays) {
  sim::Simulator sim;
  MixNetwork mix(sim, {.num_relays = 5}, Rng(7));
  Rng rng(8);
  mix.fail_relay(0);
  mix.fail_relay(1);
  for (int i = 0; i < 50; ++i) {
    for (const RelayId r : mix.random_route(3, rng)) {
      EXPECT_GE(r, 2u);
    }
  }
  EXPECT_THROW(mix.random_route(4, rng), CheckError);
}

TEST(MixNetwork, FreshWrappingsOfSamePayloadBothPass) {
  sim::Simulator sim;
  MixNetwork mix(sim, {.num_relays = 3}, Rng(9));
  Rng rng(10);
  const std::vector<RelayId> route{0, 1};

  int delivered = 0;
  const crypto::Bytes payload = crypto::to_bytes("again");
  mix.send(route, payload, [&](crypto::Bytes) { ++delivered; }, rng);
  mix.send(route, payload, [&](crypto::Bytes) { ++delivered; }, rng);
  sim.run_all();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(mix.replays_blocked(), 0u);
}

TEST(MixNetwork, ReplayedWrappingBlocked) {
  // §III-C replay defence: a relay drops a byte-identical message the
  // second time it sees it.
  sim::Simulator sim;
  MixNetwork mix(sim, {.num_relays = 2}, Rng(12));
  Rng rng(13);

  // Build a wrapped message addressed to relay 0 as exit.
  const crypto::Bytes payload = crypto::to_bytes("replayable");
  const crypto::Bytes wrapped = onion_wrap(
      {{kFinalHop, mix.relay_public_key(0)}},
      crypto::BytesView(payload.data(), payload.size()), rng);

  int delivered = 0;
  mix.inject(0, wrapped, [&](crypto::Bytes) { ++delivered; });
  mix.inject(0, wrapped, [&](crypto::Bytes) { ++delivered; });
  sim.run_all();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(mix.replays_blocked(), 1u);
}

TEST(MixNetwork, ReplayProtectionCanBeDisabled) {
  sim::Simulator sim;
  MixNetwork mix(sim, {.num_relays = 2, .replay_protection = false}, Rng(14));
  Rng rng(15);
  const crypto::Bytes payload = crypto::to_bytes("x");
  const crypto::Bytes wrapped = onion_wrap(
      {{kFinalHop, mix.relay_public_key(0)}},
      crypto::BytesView(payload.data(), payload.size()), rng);
  int delivered = 0;
  mix.inject(0, wrapped, [&](crypto::Bytes) { ++delivered; });
  mix.inject(0, wrapped, [&](crypto::Bytes) { ++delivered; });
  sim.run_all();
  EXPECT_EQ(delivered, 2);
}

TEST(MixNetwork, DistinctRelayKeys) {
  sim::Simulator sim;
  MixNetwork mix(sim, {.num_relays = 6}, Rng(11));
  for (RelayId a = 0; a < 6; ++a)
    for (RelayId b = a + 1; b < 6; ++b)
      EXPECT_NE(mix.relay_public_key(a), mix.relay_public_key(b));
}

}  // namespace
}  // namespace ppo::privacylink
