// Byzantine adversary on the sharded backend: attacked trajectories
// must be bit-identical for every shard count K (engine state is
// node-keyed and only touched from that node's events), the
// zero-adversary guarantee must hold shard-side too, and the defenses
// must not break K-invariance.
#include <gtest/gtest.h>

#include "adversary/plan.hpp"
#include "experiments/scenario.hpp"
#include "graph/generators.hpp"

namespace ppo::experiments {
namespace {

using adversary::AdversaryPlan;

graph::Graph small_trust(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return graph::holme_kim(n, 3, 0.3, rng);
}

OverlayScenario sharded_scenario(std::uint64_t seed) {
  OverlayScenario s;
  s.params.cache_size = 60;
  s.params.shuffle_length = 8;
  s.params.target_links = 10;
  s.params.pseudonym_lifetime = 30.0;
  s.params.shuffle_timeout = 0.25;
  s.params.shuffle_max_retries = 1;
  s.churn.alpha = 0.9;
  s.window.warmup = 30.0;
  s.window.measure = 15.0;
  s.window.sample_every = 5.0;
  s.window.apl_sources = 8;
  s.seed = seed;
  return s;
}

void expect_same_run(const OverlayRunResult& a, const OverlayRunResult& b,
                     std::size_t shards) {
  EXPECT_EQ(a.stats.frac_disconnected.mean(), b.stats.frac_disconnected.mean())
      << "K=" << shards;
  EXPECT_EQ(a.stats.norm_apl.mean(), b.stats.norm_apl.mean()) << "K=" << shards;
  EXPECT_EQ(a.replacements, b.replacements) << "K=" << shards;
  EXPECT_EQ(a.messages_total, b.messages_total) << "K=" << shards;
  EXPECT_EQ(a.final_total_edges, b.final_total_edges) << "K=" << shards;
  EXPECT_EQ(a.health.requests_sent, b.health.requests_sent) << "K=" << shards;
  EXPECT_EQ(a.health.exchanges_completed, b.health.exchanges_completed)
      << "K=" << shards;
  EXPECT_EQ(a.health.messages_delivered, b.health.messages_delivered)
      << "K=" << shards;
  EXPECT_EQ(a.health.forged_injected, b.health.forged_injected)
      << "K=" << shards;
  EXPECT_EQ(a.health.replays_injected, b.health.replays_injected)
      << "K=" << shards;
  EXPECT_EQ(a.health.eclipse_records_injected,
            b.health.eclipse_records_injected)
      << "K=" << shards;
  EXPECT_EQ(a.health.responses_suppressed, b.health.responses_suppressed)
      << "K=" << shards;
  EXPECT_EQ(a.health.slots_eclipsed, b.health.slots_eclipsed)
      << "K=" << shards;
  EXPECT_EQ(a.health.forged_rejected, b.health.forged_rejected)
      << "K=" << shards;
  EXPECT_EQ(a.health.requests_rate_limited, b.health.requests_rate_limited)
      << "K=" << shards;
  EXPECT_EQ(a.health.displacements_damped, b.health.displacements_damped)
      << "K=" << shards;
  EXPECT_EQ(a.health.honest_requests_sent, b.health.honest_requests_sent)
      << "K=" << shards;
  EXPECT_EQ(a.health.honest_exchanges_completed,
            b.health.honest_exchanges_completed)
      << "K=" << shards;
}

TEST(AdversarySharded, MixedAttackIsShardCountInvariant) {
  const graph::Graph trust = small_trust(96, 7);
  OverlayScenario scenario = sharded_scenario(43);
  AdversaryPlan plan;
  plan.polluter_fraction = 0.1;
  plan.eclipser_fraction = 0.05;
  plan.dropper_fraction = 0.05;
  plan.replayer_fraction = 0.05;
  plan.seed = 0xADE;
  scenario.adversary = plan;

  scenario.shards = 1;
  const auto base = run_overlay(trust, scenario);
  EXPECT_GT(base.health.forged_injected, 0u);
  EXPECT_GT(base.health.responses_suppressed, 0u);
  for (const std::size_t shards : {2, 3}) {
    scenario.shards = shards;
    const auto out = run_overlay(trust, scenario);
    expect_same_run(base, out, shards);
  }
}

TEST(AdversarySharded, DefendedAttackIsShardCountInvariant) {
  const graph::Graph trust = small_trust(96, 7);
  OverlayScenario scenario = sharded_scenario(47);
  scenario.adversary = [] {
    AdversaryPlan plan;
    plan.polluter_fraction = 0.2;
    plan.eclipser_fraction = 0.05;
    plan.seed = 0xDEF;
    return plan;
  }();
  scenario.params.validate_received = true;
  scenario.params.peer_rate_limit = 4;
  scenario.params.peer_rate_window = 10.0;
  scenario.params.sampler_min_dwell = 5.0;

  scenario.shards = 1;
  const auto base = run_overlay(trust, scenario);
  EXPECT_GT(base.health.forged_rejected, 0u);
  scenario.shards = 4;
  const auto sharded = run_overlay(trust, scenario);
  expect_same_run(base, sharded, 4);
}

TEST(AdversarySharded, ZeroAdversaryPlanIsBitIdenticalOnShards) {
  const graph::Graph trust = small_trust(64, 11);
  OverlayScenario plain = sharded_scenario(53);
  plain.shards = 2;
  const auto bare = run_overlay(trust, plain);

  OverlayScenario wrapped = plain;
  wrapped.adversary = AdversaryPlan{};  // enabled() == false
  const auto with_plan = run_overlay(trust, wrapped);
  expect_same_run(bare, with_plan, 2);
  EXPECT_EQ(with_plan.health.forged_injected, 0u);
}

}  // namespace
}  // namespace ppo::experiments
