// runner/json: escaping, number round-trips, ordered objects, the
// parser, and parse(dump(x)) == x round-trips for nested documents.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "runner/json.hpp"

namespace ppo::runner {
namespace {

TEST(Json, DumpsPrimitives) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(std::int64_t{-7}).dump(), "-7");
  EXPECT_EQ(Json(std::uint64_t{18446744073709551615ull}).dump(),
            "18446744073709551615");
  EXPECT_EQ(Json(0.5).dump(), "0.5");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, NonFiniteNumbersBecomeNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
}

TEST(Json, EscapesStrings) {
  EXPECT_EQ(Json("a\"b").dump(), "\"a\\\"b\"");
  EXPECT_EQ(Json("back\\slash").dump(), "\"back\\\\slash\"");
  EXPECT_EQ(Json("line\nbreak\ttab").dump(), "\"line\\nbreak\\ttab\"");
  EXPECT_EQ(Json(std::string("ctrl\x01")).dump(), "\"ctrl\\u0001\"");
  // UTF-8 passes through unescaped.
  EXPECT_EQ(Json("π ≈ 3").dump(), "\"π ≈ 3\"");
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  Json j = Json::object();
  j["zebra"] = 1;
  j["alpha"] = 2;
  j["mid"] = Json::array();
  EXPECT_EQ(j.dump(), "{\"zebra\":1,\"alpha\":2,\"mid\":[]}");
  EXPECT_TRUE(j.contains("alpha"));
  EXPECT_FALSE(j.contains("beta"));
  EXPECT_EQ(j.at("alpha").as_int(), 2);
  EXPECT_THROW(j.at("beta"), std::out_of_range);
}

TEST(Json, PrettyPrintIndents) {
  Json j = Json::object();
  j["xs"] = Json::array_of({1.0, 2.0});
  EXPECT_EQ(j.dump(2), "{\n  \"xs\": [\n    1,\n    2\n  ]\n}");
}

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse(" -12 ").as_int(), -12);
  EXPECT_EQ(Json::parse("18446744073709551615").as_uint(),
            18446744073709551615ull);
  EXPECT_DOUBLE_EQ(Json::parse("2.5e-3").as_double(), 2.5e-3);
  EXPECT_EQ(Json::parse("\"x\\u00e9y\"").as_string(), "x\u00e9y");
  // Surrogate pair -> 4-byte UTF-8.
  EXPECT_EQ(Json::parse("\"\\ud83d\\ude00\"").as_string(), "\U0001F600");
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), JsonParseError);
  EXPECT_THROW(Json::parse("{"), JsonParseError);
  EXPECT_THROW(Json::parse("[1,]"), JsonParseError);
  EXPECT_THROW(Json::parse("nul"), JsonParseError);
  EXPECT_THROW(Json::parse("\"unterminated"), JsonParseError);
  EXPECT_THROW(Json::parse("\"bad\\q\""), JsonParseError);
  EXPECT_THROW(Json::parse("\"\\ud83d\""), JsonParseError);  // lone surrogate
  EXPECT_THROW(Json::parse("{} extra"), JsonParseError);
  EXPECT_THROW(Json::parse("01x"), JsonParseError);
}

TEST(Json, RoundTripsNestedDocuments) {
  Json doc = Json::object();
  doc["artefact"] = "fig3_connectivity";
  doc["seed"] = std::uint64_t{42};
  doc["wall_seconds"] = 1.25;
  doc["flags"] = Json::array();
  doc["flags"].push_back(true);
  doc["flags"].push_back(Json());
  Json series = Json::object();
  series["name"] = "trust-f0.5 \"quoted\" \\ and\nnewline";
  series["values"] = Json::array_of({0.125, 1e-9, -3.75, 1e300});
  doc["series"] = std::move(series);

  for (const int indent : {-1, 2}) {
    const Json back = Json::parse(doc.dump(indent));
    EXPECT_EQ(back, doc) << "indent=" << indent;
    EXPECT_DOUBLE_EQ(
        back.at("series").at("values").at(3).as_double(), 1e300);
    EXPECT_EQ(back.at("series").at("name").as_string(),
              "trust-f0.5 \"quoted\" \\ and\nnewline");
  }
}

TEST(Json, NumberRoundTripIsExact) {
  for (const double v : {0.1, 1.0 / 3.0, 6.02214076e23, -0.0, 5e-324}) {
    const Json back = Json::parse(Json(v).dump());
    EXPECT_EQ(back.as_double(), v);
  }
}

}  // namespace
}  // namespace ppo::runner
