// CYCLON-style pseudonym cache (§III-D-1).
#include <gtest/gtest.h>

#include <set>

#include "overlay/cache.hpp"

namespace ppo::overlay {
namespace {

PseudonymRecord rec(PseudonymValue v, double expiry = 1000.0) {
  return PseudonymRecord{v, expiry};
}

TEST(Cache, InsertUpToCapacity) {
  PseudonymCache cache(3);
  Rng rng(1);
  cache.merge({rec(1), rec(2), rec(3), rec(4)}, /*own=*/99, {}, 0.0, rng);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(Cache, OwnPseudonymNeverCached) {
  PseudonymCache cache(10);
  Rng rng(1);
  cache.merge({rec(1), rec(42)}, /*own=*/42, {}, 0.0, rng);
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(42));
}

TEST(Cache, ExpiredEntriesNotInserted) {
  PseudonymCache cache(10);
  Rng rng(1);
  cache.merge({rec(1, 5.0)}, 0, {}, /*now=*/6.0, rng);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(Cache, DuplicateKeepsLaterExpiry) {
  PseudonymCache cache(10);
  Rng rng(1);
  cache.merge({rec(1, 50.0)}, 0, {}, 0.0, rng);
  cache.merge({rec(1, 80.0)}, 0, {}, 0.0, rng);
  EXPECT_EQ(cache.size(), 1u);
  const auto snapshot = cache.snapshot(0.0);
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_DOUBLE_EQ(snapshot[0].expiry, 80.0);
}

TEST(Cache, SentEntriesArepreferredVictims) {
  PseudonymCache cache(3);
  Rng rng(1);
  cache.merge({rec(1), rec(2), rec(3)}, 0, {}, 0.0, rng);
  // Full; new entries should displace what we just sent (1 and 2).
  const std::vector<PseudonymRecord> sent{rec(1), rec(2)};
  cache.merge({rec(10), rec(11)}, 0, sent, 0.0, rng);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_TRUE(cache.contains(10));
  EXPECT_TRUE(cache.contains(11));
  EXPECT_TRUE(cache.contains(3));
}

TEST(Cache, RandomEvictionWhenNoVictimsLeft) {
  PseudonymCache cache(2);
  Rng rng(1);
  cache.merge({rec(1), rec(2)}, 0, {}, 0.0, rng);
  cache.merge({rec(3)}, 0, {}, 0.0, rng);  // no sent-set: random victim
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.contains(3));
}

TEST(Cache, PurgeExpired) {
  PseudonymCache cache(10);
  Rng rng(1);
  cache.merge({rec(1, 10.0), rec(2, 20.0), rec(3, 30.0)}, 0, {}, 0.0, rng);
  cache.purge_expired(15.0);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.contains(1));
}

TEST(Cache, SelectRandomReturnsDistinctLiveEntries) {
  PseudonymCache cache(50);
  Rng rng(2);
  std::vector<PseudonymRecord> records;
  for (PseudonymValue v = 1; v <= 30; ++v)
    records.push_back(rec(v, v <= 10 ? 5.0 : 100.0));
  cache.merge(records, 0, {}, 0.0, rng);

  const auto picked = cache.select_random(15, /*now=*/6.0, rng);
  EXPECT_EQ(picked.size(), 15u);
  std::set<PseudonymValue> distinct;
  for (const auto& r : picked) {
    EXPECT_GT(r.value, 10u);  // expired ones were dropped
    distinct.insert(r.value);
  }
  EXPECT_EQ(distinct.size(), picked.size());
}

TEST(Cache, SelectRandomWhenAskingMoreThanSize) {
  PseudonymCache cache(10);
  Rng rng(3);
  cache.merge({rec(1), rec(2)}, 0, {}, 0.0, rng);
  EXPECT_EQ(cache.select_random(40, 0.0, rng).size(), 2u);
  EXPECT_TRUE(cache.select_random(0, 0.0, rng).empty());
}

TEST(Cache, SelectionIsRoughlyUniform) {
  PseudonymCache cache(20);
  Rng rng(4);
  std::vector<PseudonymRecord> records;
  for (PseudonymValue v = 0; v < 20; ++v) records.push_back(rec(v + 1));
  cache.merge(records, 0, {}, 0.0, rng);

  std::vector<std::size_t> counts(20, 0);
  for (int trial = 0; trial < 8000; ++trial)
    for (const auto& r : cache.select_random(5, 0.0, rng))
      ++counts[static_cast<std::size_t>(r.value - 1)];
  // Uniform 1/4 inclusion probability: allow generous chi-square.
  double chi2 = 0.0;
  const double expected = 8000.0 * 5 / 20;
  for (auto c : counts) {
    const double d = static_cast<double>(c) - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 60.0);
}

TEST(Cache, RejectsZeroCapacity) {
  EXPECT_THROW(PseudonymCache(0), CheckError);
}

}  // namespace
}  // namespace ppo::overlay
