// Fault-injection layer unit tests: FaultPlan validation, the
// FaultyTransport decorator's fault semantics, its zero-fault no-op
// guarantee and the LinkTransport drop-accounting invariant, plus the
// FaultInjector's blackout scheduling.
#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"
#include "fault/fault_injector.hpp"
#include "fault/faulty_transport.hpp"
#include "privacylink/transport.hpp"
#include "sim/simulator.hpp"

namespace ppo::fault {
namespace {

using privacylink::NodeId;

struct Fixture {
  sim::Simulator sim;
  std::vector<char> online;
  privacylink::Transport inner;
  FaultyTransport faulty;

  Fixture(std::size_t n, FaultPlan plan,
          privacylink::TransportOptions opts = {.min_latency = 1.0,
                                                .max_latency = 1.0})
      : online(n, 1),
        inner(sim, opts, Rng(7),
              [this](NodeId v) { return online[v] != 0; }),
        faulty(sim, inner, plan, n) {}
};

TEST(FaultPlan, DefaultPlanIsInert) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  plan.validate();  // does not throw
}

TEST(FaultPlan, AnyFaultKnobEnables) {
  FaultPlan plan;
  plan.drop_probability = 0.1;
  EXPECT_TRUE(plan.enabled());

  FaultPlan outage;
  outage.link_outages.push_back({5.0, 6.0});
  EXPECT_TRUE(outage.enabled());
}

TEST(FaultPlan, ValidateRejectsNonsense) {
  FaultPlan plan;
  plan.drop_probability = 1.5;
  EXPECT_THROW(plan.validate(), CheckError);

  FaultPlan inverted;
  inverted.link_outages.push_back({6.0, 5.0});
  EXPECT_THROW(inverted.validate(), CheckError);

  FaultPlan empty_group;
  empty_group.partitions.push_back({{0.0, 1.0}, {}});
  EXPECT_THROW(empty_group.validate(), CheckError);

  FaultPlan jitter;
  jitter.jitter_min = 2.0;
  jitter.jitter_max = 1.0;
  EXPECT_THROW(jitter.validate(), CheckError);
}

TEST(FaultyTransport, InertPlanForwardsVerbatim) {
  Fixture fx(3, FaultPlan{});
  int deliveries = 0;
  double delivered_at = -1.0;
  fx.faulty.send(0, 1, [&] {
    ++deliveries;
    delivered_at = fx.sim.now();
  });
  fx.sim.run_all();
  EXPECT_EQ(deliveries, 1);
  EXPECT_DOUBLE_EQ(delivered_at, 1.0);  // inner latency only
  EXPECT_EQ(fx.faulty.messages_sent(), 1u);
  EXPECT_EQ(fx.faulty.messages_delivered(), 1u);
  EXPECT_EQ(fx.faulty.counters().total_faulted(), 0u);
}

TEST(FaultyTransport, EnabledButIdlePlanMatchesBareTransport) {
  // A plan whose only fault is an outage window far in the future is
  // enabled() (so services wrap it), yet until the window opens the
  // wrapper must not disturb delivery times or draw from any RNG the
  // protocol sees.
  FaultPlan plan;
  plan.link_outages.push_back({1e9, 1e9 + 1.0});

  std::vector<double> bare_times;
  {
    sim::Simulator sim;
    privacylink::Transport t(sim, {.min_latency = 0.1, .max_latency = 0.9},
                             Rng(7), [](NodeId) { return true; });
    for (int i = 0; i < 20; ++i)
      t.send(0, 1, [&] { bare_times.push_back(sim.now()); });
    sim.run_all();
  }
  std::vector<double> wrapped_times;
  {
    sim::Simulator sim;
    privacylink::Transport t(sim, {.min_latency = 0.1, .max_latency = 0.9},
                             Rng(7), [](NodeId) { return true; });
    FaultyTransport faulty(sim, t, plan);
    for (int i = 0; i < 20; ++i)
      faulty.send(0, 1, [&] { wrapped_times.push_back(sim.now()); });
    sim.run_all();
  }
  EXPECT_EQ(bare_times, wrapped_times);
}

TEST(FaultyTransport, OfflineSenderStillRefused) {
  FaultPlan plan;
  plan.drop_probability = 1.0;
  Fixture fx(2, plan);
  fx.online[0] = 0;
  EXPECT_FALSE(fx.faulty.send(0, 1, [] {}));
  fx.sim.run_all();
  EXPECT_EQ(fx.faulty.messages_sent(), 0u);
  EXPECT_EQ(fx.faulty.counters().injected_drops, 0u);
}

TEST(FaultyTransport, FullLossDropsEverything) {
  FaultPlan plan;
  plan.drop_probability = 1.0;
  Fixture fx(2, plan);
  int deliveries = 0;
  for (int i = 0; i < 50; ++i) fx.faulty.send(0, 1, [&] { ++deliveries; });
  fx.sim.run_all();
  EXPECT_EQ(deliveries, 0);
  EXPECT_EQ(fx.faulty.messages_sent(), 50u);
  EXPECT_EQ(fx.faulty.messages_delivered(), 0u);
  EXPECT_EQ(fx.faulty.counters().injected_drops, 50u);
  EXPECT_EQ(fx.faulty.messages_dropped(), 50u);
}

/// The LinkTransport invariant messages_dropped() == sent - delivered
/// must survive injected loss and duplication (which adds sends).
/// All receivers stay online here, so every loss is the wrapper's
/// doing and the fault counters explain the dropped total exactly.
TEST(FaultyTransport, DropAccountingInvariantUnderMixedFaults) {
  FaultPlan plan;
  plan.drop_probability = 0.3;
  plan.duplicate_probability = 0.3;
  plan.jitter_max = 0.5;
  Fixture fx(4, plan);
  std::uint64_t deliveries = 0;
  Rng traffic(99);
  for (int i = 0; i < 300; ++i) {
    const NodeId to = 1 + static_cast<NodeId>(traffic.uniform_u64(3));
    fx.faulty.send(0, to, [&] { ++deliveries; });
  }
  fx.sim.run_all();

  EXPECT_EQ(fx.faulty.messages_delivered(), deliveries);
  EXPECT_EQ(fx.faulty.messages_dropped(),
            fx.faulty.messages_sent() - fx.faulty.messages_delivered());
  // The wrapper mirrors the inner transport's sends one-to-one
  // (duplicates included) and every drop is attributed to its cause.
  EXPECT_EQ(fx.faulty.messages_sent(), fx.inner.messages_sent());
  const auto& c = fx.faulty.counters();
  EXPECT_EQ(fx.faulty.messages_dropped(), c.injected_drops);
  EXPECT_GT(c.injected_drops, 0u);
  EXPECT_GT(c.duplicates, 0u);
  EXPECT_GT(deliveries, 0u);
}

/// Same invariant when the inner transport is the one dropping:
/// duplicated and delayed copies to an offline receiver die inside
/// the inner transport, and the wrapper's ledger stays consistent.
TEST(FaultyTransport, DropAccountingInvariantWithOfflineReceivers) {
  FaultPlan plan;
  plan.duplicate_probability = 0.5;
  plan.jitter_max = 0.5;
  Fixture fx(3, plan);
  fx.online[2] = 0;  // permanently offline receiver
  std::uint64_t deliveries = 0;
  Rng traffic(99);
  for (int i = 0; i < 200; ++i) {
    const NodeId to = 1 + static_cast<NodeId>(traffic.uniform_u64(2));
    fx.faulty.send(0, to, [&] { ++deliveries; });
  }
  fx.sim.run_all();

  EXPECT_EQ(fx.faulty.messages_delivered(), deliveries);
  EXPECT_EQ(fx.faulty.messages_dropped(),
            fx.faulty.messages_sent() - fx.faulty.messages_delivered());
  // No fault drops configured: every loss is an inner
  // (offline-receiver) drop, duplicates included.
  EXPECT_EQ(fx.faulty.counters().injected_drops, 0u);
  EXPECT_EQ(fx.faulty.messages_dropped(), fx.inner.messages_dropped());
  EXPECT_GT(fx.faulty.messages_dropped(), 0u);
  EXPECT_GT(fx.faulty.counters().duplicates, 0u);
  EXPECT_GT(deliveries, 0u);
}

TEST(FaultyTransport, DuplicateDeliversTwice) {
  FaultPlan plan;
  plan.duplicate_probability = 1.0;
  Fixture fx(2, plan);
  int deliveries = 0;
  fx.faulty.send(0, 1, [&] { ++deliveries; });
  fx.sim.run_all();
  EXPECT_EQ(deliveries, 2);
  EXPECT_EQ(fx.faulty.messages_sent(), 2u);  // the copy is on the wire
  EXPECT_EQ(fx.faulty.counters().duplicates, 1u);
}

TEST(FaultyTransport, OutageWindowDropsOnlyInside) {
  FaultPlan plan;
  plan.link_outages.push_back({4.0, 6.0});
  Fixture fx(2, plan);
  int deliveries = 0;
  fx.sim.schedule_at(5.0, [&] {  // inside the window
    fx.faulty.send(0, 1, [&] { ++deliveries; });
  });
  fx.sim.schedule_at(7.0, [&] {  // after it
    fx.faulty.send(0, 1, [&] { ++deliveries; });
  });
  fx.sim.run_all();
  EXPECT_EQ(deliveries, 1);
  EXPECT_EQ(fx.faulty.counters().outage_drops, 1u);
}

TEST(FaultyTransport, PartitionBlocksOnlyCrossTraffic) {
  FaultPlan plan;
  plan.partitions.push_back({{0.0, 10.0}, {0, 1}});
  Fixture fx(4, plan);
  int cross = 0, within = 0, later = 0;
  fx.faulty.send(0, 2, [&] { ++cross; });   // group -> outside: dropped
  fx.faulty.send(2, 1, [&] { ++cross; });   // outside -> group: dropped
  fx.faulty.send(0, 1, [&] { ++within; });  // inside the group: flows
  fx.faulty.send(2, 3, [&] { ++within; });  // outside the group: flows
  fx.sim.schedule_at(11.0, [&] {            // split healed
    fx.faulty.send(0, 2, [&] { ++later; });
  });
  fx.sim.run_all();
  EXPECT_EQ(cross, 0);
  EXPECT_EQ(within, 2);
  EXPECT_EQ(later, 1);
  EXPECT_EQ(fx.faulty.counters().partition_drops, 2u);
}

TEST(FaultyTransport, JitterDelaysDelivery) {
  FaultPlan plan;
  plan.jitter_min = 5.0;
  plan.jitter_max = 5.0;
  Fixture fx(2, plan);
  double delivered_at = -1.0;
  fx.faulty.send(0, 1, [&] { delivered_at = fx.sim.now(); });
  fx.sim.run_all();
  EXPECT_DOUBLE_EQ(delivered_at, 6.0);  // 1 inner latency + 5 jitter
  EXPECT_EQ(fx.faulty.counters().delayed, 1u);
  EXPECT_EQ(fx.faulty.messages_delivered(), 1u);
}

TEST(FaultyTransport, ReorderLetsLaterMessagesOvertake) {
  FaultPlan plan;
  plan.reorder_probability = 1.0;
  plan.reorder_min_delay = 3.0;
  plan.reorder_max_delay = 3.0;
  Fixture fx(2, plan);
  std::vector<int> order;
  fx.faulty.send(0, 1, [&] { order.push_back(1); });
  fx.sim.schedule_at(2.0, [&] {
    // Bypass the plan for the second message so it keeps its nominal
    // latency and overtakes the held-back first one.
    fx.inner.send(0, 1, [&] { order.push_back(2); });
  });
  fx.sim.run_all();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2);
  EXPECT_EQ(order[1], 1);
}

TEST(FaultyTransport, FaultPatternIsDeterministic) {
  const auto run = [] {
    FaultPlan plan;
    plan.drop_probability = 0.4;
    plan.duplicate_probability = 0.2;
    plan.jitter_max = 1.0;
    plan.seed = 123;
    Fixture fx(3, plan);
    std::vector<double> times;
    for (int i = 0; i < 100; ++i)
      fx.faulty.send(0, 1 + (i % 2), [&] { times.push_back(fx.sim.now()); });
    fx.sim.run_all();
    return std::make_pair(times, fx.faulty.counters().total_faulted());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(FaultInjector, BlackoutTogglesAvailabilityHook) {
  sim::Simulator sim;
  ServiceFaults faults;
  faults.pseudonym_blackouts.push_back({2.0, 4.0});
  faults.pseudonym_blackouts.push_back({3.0, 5.0});  // overlapping

  bool available = true;
  std::vector<std::pair<double, bool>> toggles;
  FaultInjector::Hooks hooks;
  hooks.set_pseudonym_service_available = [&](bool a) {
    available = a;
    toggles.emplace_back(sim.now(), a);
  };
  FaultInjector injector(sim, faults, hooks);
  injector.arm();

  sim.run_until(2.5);
  EXPECT_FALSE(available);
  EXPECT_TRUE(injector.blackout_active());
  sim.run_until(4.5);  // first window closed, second still open
  EXPECT_FALSE(available);
  sim.run_all();
  EXPECT_TRUE(available);
  EXPECT_FALSE(injector.blackout_active());
  // Exactly one down-toggle (at 2.0) and one up-toggle (at 5.0):
  // overlapping windows do not flap the service.
  ASSERT_EQ(toggles.size(), 2u);
  EXPECT_DOUBLE_EQ(toggles[0].first, 2.0);
  EXPECT_FALSE(toggles[0].second);
  EXPECT_DOUBLE_EQ(toggles[1].first, 5.0);
  EXPECT_TRUE(toggles[1].second);
  EXPECT_EQ(injector.counters().blackouts_started, 2u);
  EXPECT_EQ(injector.counters().blackouts_ended, 2u);
}

TEST(FaultInjector, BlackoutsRequireTheHook) {
  sim::Simulator sim;
  ServiceFaults faults;
  faults.pseudonym_blackouts.push_back({1.0, 2.0});
  EXPECT_THROW(FaultInjector(sim, faults, {}), CheckError);
}

TEST(FaultPlan, ValidatesLinkDropOverridesAndCrashes) {
  FaultPlan bad_prob;
  bad_prob.link_drop_overrides.push_back({0, 1, 1.5});
  EXPECT_THROW(bad_prob.validate(), CheckError);

  FaultPlan self_link;
  self_link.link_drop_overrides.push_back({2, 2, 0.5});
  EXPECT_THROW(self_link.validate(), CheckError);

  FaultPlan bad_crash;
  bad_crash.node_crashes.push_back({-1.0, 3, -1.0});
  EXPECT_THROW(bad_crash.validate(), CheckError);

  FaultPlan revive_before_crash;
  revive_before_crash.node_crashes.push_back({5.0, 3, 4.0});
  EXPECT_THROW(revive_before_crash.validate(), CheckError);

  FaultPlan ok;
  ok.link_drop_overrides.push_back({0, 1, 1.0});
  ok.node_crashes.push_back({5.0, 3, 8.0});
  ok.validate();
  EXPECT_TRUE(ok.enabled());           // overrides are transport faults
  EXPECT_TRUE(ok.has_node_crashes());  // crashes are not
  FaultPlan crashes_only;
  crashes_only.node_crashes.push_back({5.0, 3, -1.0});
  EXPECT_FALSE(crashes_only.enabled());
}

/// Directional override: a -> b is dead while b -> a flows — the
/// asymmetric-link case the plan-wide drop probability cannot express.
TEST(FaultyTransport, LinkDropOverrideIsDirectional) {
  FaultPlan plan;
  plan.link_drop_overrides.push_back({0, 1, 1.0});
  Fixture fx(2, plan);
  EXPECT_DOUBLE_EQ(fx.faulty.drop_probability_on(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(fx.faulty.drop_probability_on(1, 0), 0.0);

  int forward = 0, reverse = 0;
  for (int i = 0; i < 25; ++i) {
    fx.faulty.send(0, 1, [&] { ++forward; });
    fx.faulty.send(1, 0, [&] { ++reverse; });
  }
  fx.sim.run_all();
  EXPECT_EQ(forward, 0);
  EXPECT_EQ(reverse, 25);
  EXPECT_EQ(fx.faulty.counters().injected_drops, 25u);
}

TEST(FaultyTransport, LaterOverrideForSameLinkWins) {
  FaultPlan plan;
  plan.drop_probability = 0.0;
  plan.link_drop_overrides.push_back({0, 1, 1.0});
  plan.link_drop_overrides.push_back({0, 1, 0.0});
  Fixture fx(2, plan);
  EXPECT_DOUBLE_EQ(fx.faulty.drop_probability_on(0, 1), 0.0);
  int deliveries = 0;
  fx.faulty.send(0, 1, [&] { ++deliveries; });
  fx.sim.run_all();
  EXPECT_EQ(deliveries, 1);
}

/// A plan with overrides present but zero-fault everywhere must be
/// bit-identical to the bare transport — the zero-fault guarantee
/// extends to the new knobs, in both stream modes.
TEST(FaultyTransport, ZeroFaultOverridesKeepBitIdentity) {
  for (const bool per_link : {false, true}) {
    FaultPlan plan;
    plan.link_drop_overrides.push_back({0, 1, 0.0});
    plan.per_link_streams = per_link;

    std::vector<double> bare_times;
    {
      sim::Simulator sim;
      privacylink::Transport t(sim, {.min_latency = 0.1, .max_latency = 0.9},
                               Rng(7), [](NodeId) { return true; });
      for (int i = 0; i < 20; ++i)
        t.send(0, 1, [&] { bare_times.push_back(sim.now()); });
      sim.run_all();
    }
    std::vector<double> wrapped_times;
    {
      sim::Simulator sim;
      privacylink::Transport t(sim, {.min_latency = 0.1, .max_latency = 0.9},
                               Rng(7), [](NodeId) { return true; });
      FaultyTransport faulty(sim, t, plan, /*num_nodes=*/2);
      for (int i = 0; i < 20; ++i)
        faulty.send(0, 1, [&] { wrapped_times.push_back(sim.now()); });
      sim.run_all();
    }
    EXPECT_EQ(bare_times, wrapped_times) << "per_link_streams=" << per_link;
  }
}

TEST(FaultyTransport, PerLinkStreamsNeedTheNodeCount) {
  FaultPlan plan;
  plan.drop_probability = 0.5;
  plan.per_link_streams = true;
  sim::Simulator sim;
  privacylink::Transport t(sim, {}, Rng(7), [](NodeId) { return true; });
  EXPECT_THROW(FaultyTransport(sim, t, plan), CheckError);
}

/// Per-link fate streams depend only on a link's own traffic: traffic
/// on OTHER links must not shift a link's fault pattern (the property
/// the sharded backend needs).
TEST(FaultyTransport, PerLinkStreamsIsolateLinks) {
  FaultPlan plan;
  plan.drop_probability = 0.4;
  plan.per_link_streams = true;
  plan.seed = 99;

  const auto deliveries_on_01 = [&plan](bool extra_traffic) {
    Fixture fx(3, plan);
    std::vector<int> delivered;
    for (int i = 0; i < 60; ++i) {
      const int idx = i;
      fx.faulty.send(0, 1, [&delivered, idx] { delivered.push_back(idx); });
      if (extra_traffic) fx.faulty.send(0, 2, [] {});
    }
    fx.sim.run_all();
    return delivered;
  };
  EXPECT_EQ(deliveries_on_01(false), deliveries_on_01(true));
}

TEST(FaultStream, CrashMaterializationIsDeterministicAndSorted) {
  FaultPlan plan;
  plan.seed = 0xABCD;
  plan.node_crashes.push_back({5.0, 8, 12.0});
  plan.node_crashes.push_back({2.0, 4, -1.0});

  const auto a = materialize_node_crashes(plan, 100);
  const auto b = materialize_node_crashes(plan, 100);
  ASSERT_EQ(a.size(), 12u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].revive_at, b[i].revive_at);
    if (i > 0) {
      EXPECT_TRUE(a[i - 1].at < a[i].at ||
                  (a[i - 1].at == a[i].at && a[i - 1].node < a[i].node));
    }
  }
  // Victims within one burst are distinct.
  for (std::size_t i = 1; i < 4; ++i) EXPECT_NE(a[i].node, a[i - 1].node);

  // A burst cannot crash more nodes than exist.
  FaultPlan overfull;
  overfull.node_crashes.push_back({1.0, 10, -1.0});
  EXPECT_THROW(materialize_node_crashes(overfull, 5), CheckError);
}

TEST(FaultInjector, NodeCrashesDriveTheHooks) {
  sim::Simulator sim;
  std::vector<std::pair<double, graph::NodeId>> crashed, revived;
  FaultInjector::Hooks hooks;
  hooks.fail_node = [&](graph::NodeId v) { crashed.emplace_back(sim.now(), v); };
  hooks.revive_node = [&](graph::NodeId v) {
    revived.emplace_back(sim.now(), v);
  };
  std::vector<NodeCrashEvent> events{{3, 2.0, 6.0}, {7, 4.0, -1.0}};
  FaultInjector injector(sim, {}, hooks, events);
  injector.arm();
  EXPECT_EQ(injector.counters().nodes_crashed, 2u);
  EXPECT_EQ(injector.counters().nodes_revived, 1u);

  sim.run_all();
  ASSERT_EQ(crashed.size(), 2u);
  EXPECT_EQ(crashed[0], std::make_pair(2.0, graph::NodeId{3}));
  EXPECT_EQ(crashed[1], std::make_pair(4.0, graph::NodeId{7}));
  ASSERT_EQ(revived.size(), 1u);
  EXPECT_EQ(revived[0], std::make_pair(6.0, graph::NodeId{3}));
}

TEST(FaultInjector, NodeCrashesRequireTheHooks) {
  sim::Simulator sim;
  std::vector<NodeCrashEvent> events{{1, 2.0, -1.0}};
  EXPECT_THROW(FaultInjector(sim, {}, {}, events), CheckError);
}

}  // namespace
}  // namespace ppo::fault
