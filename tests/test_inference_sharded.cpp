// Observer on the sharded backend: the merged observation log and
// every attack's ranked output must be bit-identical for every shard
// count K (buffers are destination-keyed and only touched from that
// node's events), for global and partial coverage alike.
#include <gtest/gtest.h>

#include <vector>

#include "experiments/scenario.hpp"
#include "graph/generators.hpp"
#include "inference/attacks.hpp"
#include "inference/eval.hpp"
#include "inference/observer.hpp"

namespace ppo::inference {
namespace {

graph::Graph small_trust(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return graph::holme_kim(n, 3, 0.3, rng);
}

experiments::OverlayScenario sharded_scenario(std::uint64_t seed) {
  experiments::OverlayScenario s;
  s.params.cache_size = 60;
  s.params.shuffle_length = 8;
  s.params.target_links = 10;
  s.params.pseudonym_lifetime = 30.0;
  s.params.shuffle_timeout = 0.25;
  s.params.shuffle_max_retries = 1;
  s.churn.alpha = 0.9;
  s.window.warmup = 30.0;
  s.window.measure = 15.0;
  s.window.sample_every = 5.0;
  s.window.apl_sources = 8;
  s.seed = seed;
  return s;
}

/// Log fingerprint plus one ranked-output fingerprint per registered
/// attack — the full bit-identity surface of a run.
std::vector<std::uint64_t> run_fingerprints(
    const experiments::OverlayRunResult& result, std::size_t num_nodes) {
  std::vector<std::uint64_t> out;
  out.push_back(log_fingerprint(result.observations));
  const AttackOptions options;
  const auto entities = link_pseudonym_lifetimes(result.observations, options);
  const auto truth_map =
      entity_truth_map(entities, result.observations, num_nodes);
  for (const NamedAttack& attack : all_attacks()) {
    const auto edges = attack.run(entities, result.observations, options);
    out.push_back(
        edges_fingerprint(map_to_node_edges(edges, truth_map, num_nodes)));
  }
  return out;
}

TEST(ObserverSharded, GlobalObserverLogIsShardCountInvariant) {
  const graph::Graph trust = small_trust(96, 7);
  experiments::OverlayScenario scenario = sharded_scenario(43);
  ObserverPlan plan;
  plan.coverage = 1.0;
  plan.seed = 0x0B5E;
  scenario.observer = plan;

  scenario.shards = 1;
  const auto base = experiments::run_overlay(trust, scenario);
  ASSERT_FALSE(base.observations.empty());
  const auto base_prints = run_fingerprints(base, trust.num_nodes());

  for (const std::size_t shards : {2, 4}) {
    scenario.shards = shards;
    const auto out = experiments::run_overlay(trust, scenario);
    EXPECT_EQ(out.observations.size(), base.observations.size())
        << "K=" << shards;
    EXPECT_EQ(run_fingerprints(out, trust.num_nodes()), base_prints)
        << "K=" << shards;
    EXPECT_EQ(out.messages_total, base.messages_total) << "K=" << shards;
  }
}

TEST(ObserverSharded, PartialCoverageLogIsShardCountInvariant) {
  const graph::Graph trust = small_trust(96, 7);
  experiments::OverlayScenario scenario = sharded_scenario(47);
  ObserverPlan plan;
  plan.coverage = 0.3;
  plan.seed = 0xC0;
  scenario.observer = plan;

  scenario.shards = 1;
  const auto base = experiments::run_overlay(trust, scenario);
  ASSERT_FALSE(base.observations.empty());
  const auto base_prints = run_fingerprints(base, trust.num_nodes());

  scenario.shards = 3;
  const auto sharded = experiments::run_overlay(trust, scenario);
  EXPECT_EQ(run_fingerprints(sharded, trust.num_nodes()), base_prints);
}

TEST(ObserverSharded, ObserverCoexistsWithDefensesUnchanged) {
  // PR5 defenses (validation + rate limiting) alter the trajectory;
  // the observer must still be K-invariant on top of them and must
  // not alter the defended trajectory itself.
  const graph::Graph trust = small_trust(96, 7);
  experiments::OverlayScenario scenario = sharded_scenario(61);
  scenario.params.validate_received = true;
  scenario.params.peer_rate_limit = 4;
  scenario.params.peer_rate_window = 10.0;

  scenario.shards = 2;
  const auto bare = experiments::run_overlay(trust, scenario);

  ObserverPlan plan;
  plan.coverage = 1.0;
  scenario.observer = plan;
  const auto tapped = experiments::run_overlay(trust, scenario);
  EXPECT_FALSE(tapped.observations.empty());
  EXPECT_EQ(bare.messages_total, tapped.messages_total);
  EXPECT_EQ(bare.replacements, tapped.replacements);
  EXPECT_EQ(bare.health.requests_rate_limited,
            tapped.health.requests_rate_limited);

  scenario.shards = 4;
  const auto tapped4 = experiments::run_overlay(trust, scenario);
  EXPECT_EQ(run_fingerprints(tapped4, trust.num_nodes()),
            run_fingerprints(tapped, trust.num_nodes()));
}

}  // namespace
}  // namespace ppo::inference
