// Passive-observer inference subsystem: colluder-mask determinism,
// capture/deliver seam semantics, canonical log order, the attack
// pipeline on a hand-checkable fixture, and the zero-coverage
// bit-identity guarantee end to end.
#include <gtest/gtest.h>

#include <vector>

#include "experiments/scenario.hpp"
#include "graph/generators.hpp"
#include "inference/attacks.hpp"
#include "inference/eval.hpp"
#include "inference/observer.hpp"

namespace ppo::inference {
namespace {

TEST(ObserverPlan, MaterializeIsDeterministicAndCounted) {
  ObserverPlan plan;
  plan.coverage = 0.25;
  plan.seed = 77;
  const auto mask = materialize_observers(plan, 100);
  ASSERT_EQ(mask.size(), 100u);
  std::size_t count = 0;
  for (const bool bit : mask) count += bit;
  EXPECT_EQ(count, 25u);
  EXPECT_EQ(materialize_observers(plan, 100), mask);

  ObserverPlan other = plan;
  other.seed = 78;
  EXPECT_NE(materialize_observers(other, 100), mask);

  plan.coverage = 1.0;
  for (const bool bit : materialize_observers(plan, 16)) EXPECT_TRUE(bit);

  ObserverPlan off;
  EXPECT_FALSE(off.enabled());
  for (const bool bit : materialize_observers(off, 16)) EXPECT_FALSE(bit);
}

TEST(ObserverAdversary, GlobalObserverCapturesWireMetadataOnly) {
  ObserverPlan plan;
  plan.coverage = 1.0;
  ObserverAdversary observer(plan, 4);
  EXPECT_EQ(observer.observer_count(), 4u);
  EXPECT_TRUE(observer.observes(0, 1));

  const PseudonymRecord src_own{5, 20.0};
  const std::vector<PseudonymRecord> set{{7, 30.0}, {9, 40.0}};
  const auto pending =
      observer.capture(0, 1, 2.0, /*is_response=*/false, src_own, set);
  ASSERT_TRUE(pending.has_value());
  EXPECT_EQ(pending->src, 0u);
  EXPECT_EQ(pending->src_pseudo, 5u);
  EXPECT_EQ(pending->src_expiry, 20.0);
  EXPECT_EQ(pending->digest, observation_digest(set));
  EXPECT_FALSE(pending->is_response);

  // A sender without a live pseudonym has nothing on the wire to see.
  EXPECT_FALSE(observer.capture(0, 1, 2.0, false, std::nullopt, set));

  observer.deliver(*pending, 1, PseudonymRecord{7, 30.0});
  EXPECT_EQ(observer.records_recorded(), 1u);
  const auto log = observer.merged();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].time, 2.0);
  EXPECT_EQ(log[0].src_pseudo, 5u);
  EXPECT_EQ(log[0].dst_pseudo, 7u);
  EXPECT_EQ(log[0].dst_expiry, 30.0);
  EXPECT_EQ(log[0].truth_src, 0u);
  EXPECT_EQ(log[0].truth_dst, 1u);
}

TEST(ObserverAdversary, PartialCoverageSeesOnlyColluderTraffic) {
  ObserverPlan plan;
  plan.coverage = 0.25;
  plan.seed = 13;
  const std::size_t n = 20;
  ObserverAdversary observer(plan, n);
  EXPECT_EQ(observer.observer_count(), 5u);

  NodeId colluder = 0, honest_a = 0, honest_b = 0;
  bool have_colluder = false;
  std::size_t honest_found = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (observer.is_observer(v) && !have_colluder) {
      colluder = v;
      have_colluder = true;
    } else if (!observer.is_observer(v) && honest_found < 2) {
      (honest_found == 0 ? honest_a : honest_b) = v;
      ++honest_found;
    }
  }
  ASSERT_TRUE(have_colluder);
  ASSERT_EQ(honest_found, 2u);
  EXPECT_TRUE(observer.observes(colluder, honest_a));
  EXPECT_TRUE(observer.observes(honest_a, colluder));
  EXPECT_FALSE(observer.observes(honest_a, honest_b));

  const PseudonymRecord own{1, 5.0};
  EXPECT_FALSE(observer.capture(honest_a, honest_b, 1.0, false, own, {}));
  EXPECT_TRUE(observer.capture(honest_a, colluder, 1.0, false, own, {}));
}

TEST(ObserverAdversary, MergedLogIsCanonicallyOrdered) {
  ObserverPlan plan;
  plan.coverage = 1.0;
  ObserverAdversary observer(plan, 3);
  const PseudonymRecord own{1, 99.0};
  const auto send = [&](NodeId from, NodeId to, double t) {
    const auto pending = observer.capture(from, to, t, false, own, {});
    ASSERT_TRUE(pending.has_value());
    observer.deliver(*pending, to, PseudonymRecord{2, 99.0});
  };
  send(0, 2, 5.0);
  send(0, 1, 5.0);
  send(1, 0, 1.0);
  send(2, 1, 5.0);

  const auto log = observer.merged();
  ASSERT_EQ(log.size(), 4u);
  // (time, truth_dst, seq): t=1 first, then the t=5 records by
  // destination, destination 1's two records in emission order.
  EXPECT_EQ(log[0].time, 1.0);
  EXPECT_EQ(log[1].truth_dst, 1u);
  EXPECT_EQ(log[1].truth_src, 0u);
  EXPECT_EQ(log[2].truth_dst, 1u);
  EXPECT_EQ(log[2].truth_src, 2u);
  EXPECT_EQ(log[3].truth_dst, 2u);
}

TEST(ObservationDigest, DistinguishesSets) {
  const std::vector<PseudonymRecord> a{{1, 2.0}, {3, 4.0}};
  const std::vector<PseudonymRecord> b{{1, 2.0}, {3, 5.0}};
  EXPECT_EQ(observation_digest(a), observation_digest(a));
  EXPECT_NE(observation_digest(a), observation_digest(b));
  EXPECT_NE(observation_digest(a), observation_digest({}));
}

/// Hand-checkable fixture: node 0 rotates pseudonym 100 -> 101 at
/// t=10 while talking to nodes 1 (pseudonym 200) and 2 (pseudonym
/// 300); true trust edges are 0-1 and 0-2.
std::vector<ObservationRecord> fixture_log() {
  const auto rec = [](double t, PseudonymValue sp, double se,
                      PseudonymValue dp, double de, NodeId ts, NodeId td) {
    ObservationRecord r;
    r.time = t;
    r.src_pseudo = sp;
    r.src_expiry = se;
    r.dst_pseudo = dp;
    r.dst_expiry = de;
    r.truth_src = ts;
    r.truth_dst = td;
    return r;
  };
  return {
      rec(1.0, 100, 10.0, 200, 50.0, 0, 1),
      rec(2.0, 200, 50.0, 100, 10.0, 1, 0),
      rec(3.0, 100, 10.0, 300, 50.0, 0, 2),
      rec(11.0, 101, 30.0, 200, 50.0, 0, 1),
      rec(12.0, 101, 30.0, 300, 50.0, 0, 2),
  };
}

graph::Graph fixture_trust() {
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.finalize();
  return g;
}

TEST(InferenceFixture, LifetimeLinkingChainsRotatedPseudonyms) {
  const auto log = fixture_log();
  const auto entities = link_pseudonym_lifetimes(log, {});
  // 100 and 101 collapse into one entity (101 first appears right as
  // 100 expires, with identical peer sets); 200 and 300 stay alone.
  EXPECT_EQ(entities.num_entities, 3u);
  EXPECT_EQ(entities.entity_of(100), entities.entity_of(101));
  EXPECT_NE(entities.entity_of(100), entities.entity_of(200));
  EXPECT_NE(entities.entity_of(200), entities.entity_of(300));
  EXPECT_EQ(entities.entity_of(999), entities.num_entities);  // unseen

  const auto it = std::find_if(
      entities.profiles.begin(), entities.profiles.end(),
      [](const PseudonymProfile& p) { return p.value == 100; });
  ASSERT_NE(it, entities.profiles.end());
  EXPECT_EQ(it->first_seen, 1.0);
  EXPECT_EQ(it->last_seen, 3.0);
  EXPECT_EQ(it->expiry, 10.0);
  EXPECT_EQ(it->exchanges, 3u);
  EXPECT_EQ(it->peers, (std::vector<PseudonymValue>{200, 300}));
}

TEST(InferenceFixture, AttackScoresAreHandCheckable) {
  const auto log = fixture_log();
  const auto entities = link_pseudonym_lifetimes(log, {});
  const std::uint32_t e0 = entities.entity_of(100);
  const std::uint32_t e1 = entities.entity_of(200);
  const std::uint32_t e2 = entities.entity_of(300);

  // Direct exchange volume: (0,1) exchanged 3 times, (0,2) twice.
  const auto lifetime = lifetime_linking_attack(entities, log, {});
  ASSERT_EQ(lifetime.size(), 2u);
  EXPECT_EQ(lifetime[0], (ScoredEdge{std::min(e0, e1), std::max(e0, e1), 3.0}));
  EXPECT_EQ(lifetime[1], (ScoredEdge{std::min(e0, e2), std::max(e0, e2), 2.0}));

  // Entities 1 and 2 share exactly one neighbour (entity 0), each
  // with degree 1: cosine 1/sqrt(1*1) = 1. No other pair overlaps.
  const auto common = common_neighbor_attack(entities, log, {});
  ASSERT_EQ(common.size(), 1u);
  EXPECT_EQ(common[0], (ScoredEdge{std::min(e1, e2), std::max(e1, e2), 1.0}));

  // Both true pairs recur in 2 distinct 10-second buckets.
  const auto timing = timing_correlation_attack(entities, log, {});
  ASSERT_EQ(timing.size(), 2u);
  EXPECT_EQ(timing[0].score, 2.0);
  EXPECT_EQ(timing[1].score, 2.0);
}

TEST(InferenceFixture, EvaluationAgainstGroundTruthIsHandCheckable) {
  const auto log = fixture_log();
  const auto trust = fixture_trust();
  const auto entities = link_pseudonym_lifetimes(log, {});
  const auto truth_map = entity_truth_map(entities, log, trust.num_nodes());
  ASSERT_EQ(truth_map.size(), 3u);
  EXPECT_EQ(truth_map[entities.entity_of(100)], 0u);
  EXPECT_EQ(truth_map[entities.entity_of(200)], 1u);
  EXPECT_EQ(truth_map[entities.entity_of(300)], 2u);

  // Lifetime linking recovers both trust edges exactly.
  const auto lifetime = map_to_node_edges(
      lifetime_linking_attack(entities, log, {}), truth_map,
      trust.num_nodes());
  ASSERT_EQ(lifetime.size(), 2u);
  EXPECT_EQ(lifetime[0], (NodeEdge{0, 1, 3.0}));
  EXPECT_EQ(lifetime[1], (NodeEdge{0, 2, 2.0}));
  const auto lm = score_edges(lifetime, trust);
  EXPECT_EQ(lm.candidates, 2u);
  EXPECT_EQ(lm.true_edges, 2u);
  EXPECT_EQ(lm.hits, 2u);
  EXPECT_EQ(lm.precision, 1.0);
  EXPECT_EQ(lm.recall, 1.0);
  EXPECT_EQ(lm.auc, 0.5);  // all candidates positive: degenerate

  // Common-neighbour proposes only the non-edge 1-2: precision 0.
  const auto common = map_to_node_edges(
      common_neighbor_attack(entities, log, {}), truth_map,
      trust.num_nodes());
  ASSERT_EQ(common.size(), 1u);
  EXPECT_EQ(common[0], (NodeEdge{1, 2, 1.0}));
  const auto cm = score_edges(common, trust);
  EXPECT_EQ(cm.hits, 0u);
  EXPECT_EQ(cm.precision, 0.0);
  EXPECT_EQ(cm.recall, 0.0);
}

TEST(InferenceFixture, FingerprintsAreOrderAndValueSensitive) {
  const auto log = fixture_log();
  EXPECT_EQ(log_fingerprint(log), log_fingerprint(log));
  auto mutated = log;
  mutated[0].src_pseudo = 999;
  EXPECT_NE(log_fingerprint(log), log_fingerprint(mutated));
  auto reordered = log;
  std::swap(reordered[0], reordered[1]);
  EXPECT_NE(log_fingerprint(log), log_fingerprint(reordered));

  const std::vector<NodeEdge> edges{{0, 1, 2.0}, {0, 2, 1.0}};
  const std::vector<NodeEdge> flipped{{0, 2, 1.0}, {0, 1, 2.0}};
  EXPECT_EQ(edges_fingerprint(edges), edges_fingerprint(edges));
  EXPECT_NE(edges_fingerprint(edges), edges_fingerprint(flipped));
}

// -- end-to-end guarantees on the real overlay --

graph::Graph small_trust(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return graph::holme_kim(n, 3, 0.3, rng);
}

experiments::OverlayScenario small_scenario(std::uint64_t seed) {
  experiments::OverlayScenario s;
  s.params.cache_size = 60;
  s.params.shuffle_length = 8;
  s.params.target_links = 10;
  s.params.pseudonym_lifetime = 30.0;
  s.params.shuffle_timeout = 0.25;
  s.params.shuffle_max_retries = 1;
  s.churn.alpha = 0.9;
  s.window.warmup = 30.0;
  s.window.measure = 15.0;
  s.window.sample_every = 5.0;
  s.window.apl_sources = 8;
  s.seed = seed;
  return s;
}

TEST(ObserverEndToEnd, ZeroCoveragePlanIsBitIdenticalToNoObserver) {
  const graph::Graph trust = small_trust(64, 11);
  const experiments::OverlayScenario plain = small_scenario(53);
  const auto bare = experiments::run_overlay(trust, plain);

  experiments::OverlayScenario wrapped = plain;
  wrapped.observer = ObserverPlan{};  // coverage 0: enabled() == false
  const auto with_plan = experiments::run_overlay(trust, wrapped);
  EXPECT_TRUE(with_plan.observations.empty());
  EXPECT_EQ(bare.stats.frac_disconnected.mean(),
            with_plan.stats.frac_disconnected.mean());
  EXPECT_EQ(bare.stats.norm_apl.mean(), with_plan.stats.norm_apl.mean());
  EXPECT_EQ(bare.replacements, with_plan.replacements);
  EXPECT_EQ(bare.messages_total, with_plan.messages_total);
  EXPECT_EQ(bare.final_total_edges, with_plan.final_total_edges);
  EXPECT_EQ(bare.health.requests_sent, with_plan.health.requests_sent);
  EXPECT_EQ(bare.health.exchanges_completed,
            with_plan.health.exchanges_completed);
}

TEST(ObserverEndToEnd, EnabledObserverRecordsWithoutPerturbing) {
  const graph::Graph trust = small_trust(64, 11);
  const experiments::OverlayScenario plain = small_scenario(59);
  const auto bare = experiments::run_overlay(trust, plain);

  experiments::OverlayScenario observed = plain;
  ObserverPlan plan;
  plan.coverage = 1.0;
  observed.observer = plan;
  const auto tapped = experiments::run_overlay(trust, observed);

  // The observer draws no RNG and touches only its own buffers: the
  // trajectory must be untouched while the log fills up.
  EXPECT_FALSE(tapped.observations.empty());
  EXPECT_EQ(bare.replacements, tapped.replacements);
  EXPECT_EQ(bare.messages_total, tapped.messages_total);
  EXPECT_EQ(bare.final_total_edges, tapped.final_total_edges);
  EXPECT_EQ(bare.health.requests_sent, tapped.health.requests_sent);
  EXPECT_EQ(bare.health.exchanges_completed,
            tapped.health.exchanges_completed);

  // Wire records never leak raw node ids as pseudonyms and carry
  // consistent ground truth.
  for (const ObservationRecord& rec : tapped.observations) {
    EXPECT_NE(rec.src_pseudo, 0u);
    EXPECT_LT(rec.truth_src, trust.num_nodes());
    EXPECT_LT(rec.truth_dst, trust.num_nodes());
    EXPECT_NE(rec.truth_src, rec.truth_dst);
  }

  // Partial coverage sees a strict subset of the global view.
  experiments::OverlayScenario partial = plain;
  ObserverPlan quarter;
  quarter.coverage = 0.25;
  partial.observer = quarter;
  const auto subset = experiments::run_overlay(trust, partial);
  EXPECT_LT(subset.observations.size(), tapped.observations.size());
  EXPECT_EQ(bare.messages_total, subset.messages_total);
}

}  // namespace
}  // namespace ppo::inference
