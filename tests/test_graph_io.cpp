// Edge-list / DOT serialization round trips.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace ppo::graph {
namespace {

TEST(EdgeList, RoundTrip) {
  Rng rng(1);
  const Graph g = erdos_renyi_gnm(50, 120, rng);
  std::stringstream buf;
  write_edge_list(buf, g);
  const Graph back = read_edge_list(buf);
  EXPECT_EQ(back.num_nodes(), g.num_nodes());
  EXPECT_EQ(back.num_edges(), g.num_edges());
  for (const auto& [u, v] : g.edges()) EXPECT_TRUE(back.has_edge(u, v));
}

TEST(EdgeList, IsolatedNodesSurvive) {
  Graph g(5);
  g.add_edge(0, 1);
  std::stringstream buf;
  write_edge_list(buf, g);
  const Graph back = read_edge_list(buf);
  EXPECT_EQ(back.num_nodes(), 5u);
  EXPECT_EQ(back.num_edges(), 1u);
}

TEST(EdgeList, HeaderlessInputGrowsNodes) {
  std::stringstream buf("0 3\n1 2\n");
  const Graph g = read_edge_list(buf);
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_TRUE(g.has_edge(0, 3));
}

TEST(EdgeList, CommentsIgnored) {
  std::stringstream buf("# nodes 3\n# a comment\n0 1\n");
  const Graph g = read_edge_list(buf);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(EdgeList, MalformedLineThrows) {
  std::stringstream buf("0 x\n");
  EXPECT_THROW(read_edge_list(buf), CheckError);
}

TEST(EdgeList, EdgeBeyondDeclaredCountThrows) {
  std::stringstream buf("# nodes 2\n0 5\n");
  EXPECT_THROW(read_edge_list(buf), CheckError);
}

TEST(Dot, ContainsNodesAndEdges) {
  Graph g(3);
  g.add_edge(0, 1);
  std::stringstream buf;
  NodeMask mask(3, true);
  mask.set(2, false);
  write_dot(buf, g, mask, "test");
  const std::string out = buf.str();
  EXPECT_NE(out.find("graph test"), std::string::npos);
  EXPECT_NE(out.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(out.find("n2 [style=dashed"), std::string::npos);
}

}  // namespace
}  // namespace ppo::graph
