// Reduced-scale runs of the remaining figure functions: the paper's
// qualitative orderings must hold (Figures 7, 8, 9 analogues).
#include <gtest/gtest.h>

#include "experiments/figures.hpp"

namespace ppo::experiments {
namespace {

WorkbenchOptions tiny_bench() {
  WorkbenchOptions opts;
  opts.seed = 21;
  opts.social.num_nodes = 4000;
  opts.social.sub_community_size = 50;
  opts.social.community_size = 500;
  opts.trust_nodes = 220;
  return opts;
}

FigureScale tiny_scale() {
  FigureScale scale;
  scale.window.warmup = 80.0;
  scale.window.measure = 20.0;
  scale.window.sample_every = 10.0;
  scale.window.apl_sources = 12;
  scale.alphas = {0.25, 0.75};
  scale.seed = 9;
  return scale;
}

TEST(LifetimeSweep, LongerLifetimesAreMoreRobust) {
  Workbench bench(tiny_bench());
  FigureScale scale = tiny_scale();
  // The lifetime effect shows at harsh churn: offline spells must
  // frequently outlive r = 1 pseudonyms.
  scale.alphas = {0.125, 0.75};
  const auto fig = lifetime_sweep(bench, scale);
  // Series order: trust, r1, r3, r9, r-infinite, random.
  ASSERT_EQ(fig.connectivity.size(), 6u);
  EXPECT_EQ(fig.connectivity[1].name, "r1");
  EXPECT_EQ(fig.connectivity[4].name, "r-infinite");

  const double low_alpha_r1 = fig.connectivity[1].values[0];
  const double low_alpha_rinf = fig.connectivity[4].values[0];
  const double low_alpha_trust = fig.connectivity[0].values[0];
  // r = 1 loses most pseudonym links across offline spells: clearly
  // worse than non-expiring pseudonyms, clearly better-or-equal to
  // the bare trust graph.
  EXPECT_GT(low_alpha_r1, low_alpha_rinf + 0.03);
  EXPECT_LT(low_alpha_r1, low_alpha_trust + 0.05);
}

TEST(ConvergenceTrace, OverlayImprovesTrustStaysFlat) {
  Workbench bench(tiny_bench());
  const auto fig = convergence_trace(bench, 200.0, 20.0, 11);
  ASSERT_EQ(fig.trust.size(), 10u);
  ASSERT_EQ(fig.overlay_r3.size(), 10u);
  // The trust graph's disconnection does not trend down...
  EXPECT_GT(fig.trust.mean_since(150.0), fig.trust.values()[0] * 0.5);
  // ...while the overlay ends clearly below the trust baseline.
  EXPECT_LT(fig.overlay_r3.mean_since(150.0),
            fig.trust.mean_since(150.0) * 0.7);
  EXPECT_LT(fig.overlay_r9.mean_since(150.0),
            fig.trust.mean_since(150.0) * 0.7);
}

TEST(ReplacementTrace, RatesOrderedByLifetime) {
  Workbench bench(tiny_bench());
  const auto fig = replacement_trace(bench, 300.0, 30.0, 13);
  ASSERT_EQ(fig.r3.size(), fig.r_infinite.size());
  // Steady state: shorter lifetime -> more replacement churn; eternal
  // pseudonyms converge toward zero.
  EXPECT_GT(fig.r3.mean_since(150.0), fig.r9.mean_since(150.0));
  EXPECT_GT(fig.r9.mean_since(150.0), fig.r_infinite.mean_since(150.0));
  EXPECT_LT(fig.r_infinite.mean_since(200.0), 0.5);
}

TEST(DegreeDistributions, OverlayBetweenTrustAndRandomSpread) {
  Workbench bench(tiny_bench());
  const auto fig = degree_distributions(bench, tiny_scale(), {1.0});
  ASSERT_EQ(fig.entries.size(), 1u);
  const auto& e = fig.entries[0];
  // All three distributions exist and overlay mass sits to the right
  // of the trust graph's.
  EXPECT_GT(e.overlay.quantile(0.5), e.trust.quantile(0.5));
  EXPECT_GT(e.overlay.max_value(), e.trust.quantile(0.9));
}

}  // namespace
}  // namespace ppo::experiments
