// SHA-256 / HMAC / HKDF against FIPS 180-4 and RFC 4231 / RFC 5869
// published test vectors.
#include <gtest/gtest.h>

#include "crypto/hkdf.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"

namespace ppo::crypto {
namespace {

std::string hex_digest(const Sha256Digest& d) {
  return to_hex(BytesView(d.data(), d.size()));
}

TEST(Sha256, EmptyString) {
  EXPECT_EQ(hex_digest(sha256({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  const Bytes msg = to_bytes("abc");
  EXPECT_EQ(hex_digest(sha256(msg)),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  const Bytes msg =
      to_bytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  EXPECT_EQ(hex_digest(sha256(msg)),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(BytesView(chunk.data(), chunk.size()));
  EXPECT_EQ(hex_digest(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShot) {
  const Bytes msg = to_bytes("the quick brown fox jumps over the lazy dog!!");
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.update(BytesView(msg.data(), split));
    h.update(BytesView(msg.data() + split, msg.size() - split));
    EXPECT_EQ(h.finish(), sha256(BytesView(msg.data(), msg.size())));
  }
}

TEST(Sha256, ResetReusesObject) {
  Sha256 h;
  h.update(to_bytes("garbage"));
  h.reset();
  h.update(to_bytes("abc"));
  EXPECT_EQ(hex_digest(h.finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(HmacSha256, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const Bytes data = to_bytes("Hi There");
  EXPECT_EQ(hex_digest(hmac_sha256(BytesView(key.data(), key.size()),
                                   BytesView(data.data(), data.size()))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  const Bytes key = to_bytes("Jefe");
  const Bytes data = to_bytes("what do ya want for nothing?");
  EXPECT_EQ(hex_digest(hmac_sha256(BytesView(key.data(), key.size()),
                                   BytesView(data.data(), data.size()))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case3FullBlocks) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(hex_digest(hmac_sha256(BytesView(key.data(), key.size()),
                                   BytesView(data.data(), data.size()))),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  const Bytes data = to_bytes("Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(hex_digest(hmac_sha256(BytesView(key.data(), key.size()),
                                   BytesView(data.data(), data.size()))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hkdf, Rfc5869Case1) {
  const Bytes ikm(22, 0x0b);
  const Bytes salt = from_hex("000102030405060708090a0b0c");
  const Bytes info = from_hex("f0f1f2f3f4f5f6f7f8f9");

  const Sha256Digest prk = hkdf_extract(BytesView(salt.data(), salt.size()),
                                        BytesView(ikm.data(), ikm.size()));
  EXPECT_EQ(hex_digest(prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");

  const Bytes okm = hkdf_expand(BytesView(prk.data(), prk.size()),
                                BytesView(info.data(), info.size()), 42);
  EXPECT_EQ(to_hex(BytesView(okm.data(), okm.size())),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, Rfc5869Case3NoSaltNoInfo) {
  const Bytes ikm(22, 0x0b);
  const Bytes okm = hkdf({}, BytesView(ikm.data(), ikm.size()), {}, 42);
  EXPECT_EQ(to_hex(BytesView(okm.data(), okm.size())),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(Hkdf, ExpandLengthIsRespected) {
  const Bytes ikm = to_bytes("input key material");
  for (std::size_t len : {1u, 16u, 31u, 32u, 33u, 100u}) {
    const Bytes okm = hkdf({}, BytesView(ikm.data(), ikm.size()), {}, len);
    EXPECT_EQ(okm.size(), len);
  }
}

TEST(Hkdf, DifferentInfoDecorrelates) {
  const Bytes ikm = to_bytes("shared secret");
  const Bytes a = hkdf({}, BytesView(ikm.data(), ikm.size()),
                       to_bytes("forward"), 32);
  const Bytes b = hkdf({}, BytesView(ikm.data(), ikm.size()),
                       to_bytes("backward"), 32);
  EXPECT_NE(a, b);
}

TEST(BytesHelpers, HexRoundTrip) {
  const Bytes data = from_hex("00ff10a5");
  EXPECT_EQ(data.size(), 4u);
  EXPECT_EQ(to_hex(BytesView(data.data(), data.size())), "00ff10a5");
}

TEST(BytesHelpers, CtEqual) {
  const Bytes a = to_bytes("same");
  const Bytes b = to_bytes("same");
  const Bytes c = to_bytes("diff");
  EXPECT_TRUE(ct_equal(BytesView(a.data(), a.size()), BytesView(b.data(), b.size())));
  EXPECT_FALSE(ct_equal(BytesView(a.data(), a.size()), BytesView(c.data(), c.size())));
  EXPECT_FALSE(ct_equal(BytesView(a.data(), 3), BytesView(b.data(), b.size())));
}

}  // namespace
}  // namespace ppo::crypto
