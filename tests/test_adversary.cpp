// Byzantine-adversary layer unit + integration tests: plan validation
// and deterministic role materialization, the zero-adversary
// bit-identity guarantee on the serial backend, per-role attack
// accounting, the protocol defenses (merge validation, per-peer rate
// limiting, sampler slot-churn damping) and the resilience-sweep
// figure shape.
#include <gtest/gtest.h>

#include <algorithm>

#include "adversary/plan.hpp"
#include "common/check.hpp"
#include "experiments/adversary_study.hpp"
#include "experiments/figure_json.hpp"
#include "experiments/scenario.hpp"
#include "graph/generators.hpp"

namespace ppo::experiments {
namespace {

using adversary::AdversaryPlan;
using adversary::Role;

graph::Graph small_trust(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return graph::holme_kim(n, 3, 0.3, rng);
}

/// High availability so the attack accounting is traffic-rich, small
/// window so each run stays fast. Both arms run the retry machinery:
/// droppers and rate limiters starve exchanges, and without timeouts
/// a starved node blocks forever.
OverlayScenario attack_scenario(std::uint64_t seed) {
  OverlayScenario s;
  s.params.cache_size = 60;
  s.params.shuffle_length = 8;
  s.params.target_links = 10;
  s.params.pseudonym_lifetime = 30.0;
  s.params.shuffle_timeout = 0.25;
  s.params.shuffle_max_retries = 1;
  s.churn.alpha = 0.9;
  s.window.warmup = 60.0;
  s.window.measure = 20.0;
  s.window.sample_every = 10.0;
  s.window.apl_sources = 8;
  s.seed = seed;
  return s;
}

AdversaryPlan single_role_plan(Role role, double fraction,
                               std::uint64_t seed) {
  AdversaryPlan plan;
  plan.seed = seed;
  switch (role) {
    case Role::kCachePolluter: plan.polluter_fraction = fraction; break;
    case Role::kEclipser: plan.eclipser_fraction = fraction; break;
    case Role::kDropper: plan.dropper_fraction = fraction; break;
    case Role::kReplayer: plan.replayer_fraction = fraction; break;
    case Role::kHonest: break;
  }
  return plan;
}

void expect_same_run(const OverlayRunResult& a, const OverlayRunResult& b) {
  EXPECT_EQ(a.stats.frac_disconnected.mean(), b.stats.frac_disconnected.mean());
  EXPECT_EQ(a.stats.norm_apl.mean(), b.stats.norm_apl.mean());
  EXPECT_EQ(a.replacements, b.replacements);
  EXPECT_EQ(a.messages_total, b.messages_total);
  EXPECT_EQ(a.final_total_edges, b.final_total_edges);
  EXPECT_EQ(a.health.requests_sent, b.health.requests_sent);
  EXPECT_EQ(a.health.responses_sent, b.health.responses_sent);
  EXPECT_EQ(a.health.exchanges_completed, b.health.exchanges_completed);
  EXPECT_EQ(a.health.messages_delivered, b.health.messages_delivered);
}

TEST(AdversaryPlan, DefaultPlanIsDisabledAndValid) {
  const AdversaryPlan plan;
  EXPECT_FALSE(plan.enabled());
  plan.validate();  // does not throw

  AdversaryPlan armed;
  armed.replayer_fraction = 0.1;
  EXPECT_TRUE(armed.enabled());
}

TEST(AdversaryPlan, ValidateRejectsNonsense) {
  AdversaryPlan fraction;
  fraction.polluter_fraction = 1.5;
  EXPECT_THROW(fraction.validate(), CheckError);

  AdversaryPlan sum;
  sum.polluter_fraction = 0.6;
  sum.eclipser_fraction = 0.6;
  EXPECT_THROW(sum.validate(), CheckError);

  AdversaryPlan tick;
  tick.polluter_fraction = 0.1;
  tick.polluter_tick_multiplier = 0.5;
  EXPECT_THROW(tick.validate(), CheckError);

  AdversaryPlan offset;
  offset.eclipser_fraction = 0.1;
  offset.eclipse_offset = 0;
  EXPECT_THROW(offset.validate(), CheckError);
}

TEST(AdversaryPlan, MaterializeRolesIsDeterministicDisjointAndCounted) {
  AdversaryPlan plan;
  plan.polluter_fraction = 0.1;
  plan.eclipser_fraction = 0.1;
  plan.dropper_fraction = 0.1;
  plan.replayer_fraction = 0.1;
  plan.seed = 0xBEE;

  const auto a = adversary::materialize_roles(plan, 100);
  const auto b = adversary::materialize_roles(plan, 100);
  EXPECT_EQ(a.roles, b.roles);
  EXPECT_EQ(a.victim, b.victim);

  // round(0.1 * 100) of each role, disjoint by construction.
  std::size_t counts[5] = {};
  for (const Role r : a.roles) ++counts[static_cast<std::size_t>(r)];
  EXPECT_EQ(counts[static_cast<std::size_t>(Role::kCachePolluter)], 10u);
  EXPECT_EQ(counts[static_cast<std::size_t>(Role::kEclipser)], 10u);
  EXPECT_EQ(counts[static_cast<std::size_t>(Role::kDropper)], 10u);
  EXPECT_EQ(counts[static_cast<std::size_t>(Role::kReplayer)], 10u);
  EXPECT_EQ(counts[static_cast<std::size_t>(Role::kHonest)], 60u);
  EXPECT_EQ(a.attacker_count, 40u);

  // Every eclipser targets an honest victim; nobody else has one.
  for (std::size_t v = 0; v < a.roles.size(); ++v) {
    if (a.roles[v] == Role::kEclipser) {
      ASSERT_NE(a.victim[v], adversary::kNoVictim);
      EXPECT_EQ(a.roles[a.victim[v]], Role::kHonest);
    } else {
      EXPECT_EQ(a.victim[v], adversary::kNoVictim);
    }
  }

  // A different seed reshuffles the assignment.
  AdversaryPlan reseeded = plan;
  reseeded.seed = 0xFEE;
  EXPECT_NE(adversary::materialize_roles(reseeded, 100).roles, a.roles);
}

TEST(AdversaryPlan, MakeAttackPlanMapsNamesToRoles) {
  const auto pollute = make_attack_plan("pollute", 0.2, 1);
  EXPECT_DOUBLE_EQ(pollute.polluter_fraction, 0.2);
  EXPECT_DOUBLE_EQ(pollute.eclipser_fraction, 0.0);

  const auto mixed = make_attack_plan("mixed", 0.2, 1);
  EXPECT_DOUBLE_EQ(mixed.polluter_fraction, 0.05);
  EXPECT_DOUBLE_EQ(mixed.eclipser_fraction, 0.05);
  EXPECT_DOUBLE_EQ(mixed.dropper_fraction, 0.05);
  EXPECT_DOUBLE_EQ(mixed.replayer_fraction, 0.05);

  EXPECT_THROW(make_attack_plan("sybil", 0.2, 1), CheckError);
}

/// Acceptance: a plan with every fraction at zero must leave the run
/// bit-identical to a plan-free one — the engine is never constructed
/// and no RNG stream shifts.
TEST(Adversary, ZeroAdversaryPlanIsBitIdenticalToBaseline) {
  const graph::Graph trust = small_trust(64, 5);
  const OverlayScenario base = attack_scenario(19);
  const auto bare = run_overlay(trust, base);

  OverlayScenario wrapped = base;
  wrapped.adversary = AdversaryPlan{};  // enabled() == false
  const auto with_plan = run_overlay(trust, wrapped);

  expect_same_run(bare, with_plan);
  EXPECT_EQ(with_plan.health.forged_injected, 0u);
  EXPECT_EQ(with_plan.health.replays_injected, 0u);
  EXPECT_EQ(with_plan.health.honest_requests_sent,
            with_plan.health.requests_sent);
}

TEST(Adversary, PollutersInjectAndValidationRejectsForgeries) {
  const graph::Graph trust = small_trust(64, 5);
  OverlayScenario open = attack_scenario(23);
  open.adversary = single_role_plan(Role::kCachePolluter, 0.25, 0xA1);

  const auto undefended = run_overlay(trust, open);
  EXPECT_GT(undefended.health.forged_injected, 0u);
  EXPECT_EQ(undefended.health.forged_rejected, 0u);

  OverlayScenario defended = open;
  defended.params.validate_received = true;
  const auto checked = run_overlay(trust, defended);
  EXPECT_GT(checked.health.forged_injected, 0u);
  // Forged expiries are now + lifetime * U(0.5, 2.0): the > 1.0
  // portion is over the honest maximum and must be caught.
  EXPECT_GT(checked.health.forged_rejected, 0u);
}

TEST(Adversary, RateLimiterStarvesFlooders) {
  const graph::Graph trust = small_trust(64, 5);
  OverlayScenario s = attack_scenario(29);
  s.adversary = single_role_plan(Role::kCachePolluter, 0.25, 0xA2);
  s.params.peer_rate_limit = 4;  // polluters tick 4x faster: they trip it
  s.params.peer_rate_window = 10.0;

  const auto run = run_overlay(trust, s);
  EXPECT_GT(run.health.requests_rate_limited, 0u);
  // Honest counters stay a strict subset of the global ones.
  EXPECT_GT(run.health.honest_requests_sent, 0u);
  EXPECT_LT(run.health.honest_requests_sent, run.health.requests_sent);
}

TEST(Adversary, EclipsersCaptureSlotsAndDwellDamps) {
  const graph::Graph trust = small_trust(64, 5);
  OverlayScenario open = attack_scenario(31);
  open.adversary = single_role_plan(Role::kEclipser, 0.25, 0xA3);

  const auto undefended = run_overlay(trust, open);
  EXPECT_GT(undefended.health.eclipse_records_injected, 0u);
  EXPECT_GT(undefended.health.slots_eclipsed, 0u);
  EXPECT_EQ(undefended.health.displacements_damped, 0u);

  OverlayScenario damped = open;
  damped.params.sampler_min_dwell = 5.0;
  const auto defended = run_overlay(trust, damped);
  EXPECT_GT(defended.health.displacements_damped, 0u);
}

TEST(Adversary, DroppersSuppressResponses) {
  const graph::Graph trust = small_trust(64, 5);
  OverlayScenario s = attack_scenario(37);
  s.adversary = single_role_plan(Role::kDropper, 0.25, 0xA4);

  const auto run = run_overlay(trust, s);
  EXPECT_GT(run.health.responses_suppressed, 0u);
  // Starved exchanges surface as timeouts, not hangs.
  EXPECT_GT(run.health.request_timeouts, 0u);
}

TEST(Adversary, ReplayersReinjectObservedRecords) {
  const graph::Graph trust = small_trust(64, 5);
  OverlayScenario s = attack_scenario(41);
  s.adversary = single_role_plan(Role::kReplayer, 0.25, 0xA5);

  const auto run = run_overlay(trust, s);
  EXPECT_GT(run.health.replays_injected, 0u);
}

TEST(Adversary, SweepHasExpectedShapeAndPassesZeroCheck) {
  WorkbenchOptions opts;
  opts.seed = 17;
  opts.social.num_nodes = 3000;
  opts.social.sub_community_size = 50;
  opts.social.community_size = 500;
  opts.trust_nodes = 80;

  FigureScale scale;
  scale.window.warmup = 30.0;
  scale.window.measure = 10.0;
  scale.window.sample_every = 10.0;
  scale.window.apl_sources = 8;
  scale.seed = 3;
  scale.jobs = 2;

  AdversarySpec spec;
  spec.fractions = {0.0, 0.2};
  spec.attacks = {"pollute"};

  Workbench bench(opts);
  const auto fig = adversary_resilience_sweep(bench, scale, spec);

  ASSERT_EQ(fig.connectivity.size(), 2u);  // open + defended
  EXPECT_EQ(fig.connectivity[0].name, "pollute-open");
  EXPECT_EQ(fig.connectivity[1].name, "pollute-defended");
  for (const auto& series : fig.connectivity)
    EXPECT_EQ(series.values.size(), spec.fractions.size());
  ASSERT_EQ(fig.completion.size(), 2u);
  ASSERT_EQ(fig.health.size(), 2u);
  EXPECT_TRUE(fig.zero_adversary_identical);
  // Health is merged over attacked cells only: the open arm carries
  // the injections, the defended arm additionally catches some.
  EXPECT_GT(fig.health[0].forged_injected, 0u);
  EXPECT_GT(fig.health[1].forged_rejected, 0u);
  EXPECT_EQ(fig.health[0].forged_rejected, 0u);

  // The JSON figure carries the cross-check flag and both series.
  const runner::Json j = to_json(fig);
  EXPECT_TRUE(j.at("zero_adversary_identical").as_bool());
  EXPECT_EQ(j.at("connectivity").size(), 2u);
  EXPECT_GT(j.at("health").at(0).at("forged_injected").as_uint(), 0u);
  EXPECT_EQ(runner::Json::parse(j.dump(2)), j);
}

}  // namespace
}  // namespace ppo::experiments
