// Metrics registry: key rendering, counter/gauge/histogram semantics
// and the JSON projection the bench envelopes embed.
#include <gtest/gtest.h>

#include "obs/metrics_registry.hpp"
#include "runner/json.hpp"

namespace ppo::obs {
namespace {

TEST(MetricKey, RendersDimensionsInOrder) {
  EXPECT_EQ(metric_key("events", {}), "events");
  EXPECT_EQ(metric_key("events", {{"shard", "3"}}), "events{shard=3}");
  EXPECT_EQ(metric_key("events", {{"shard", "3"}, {"node", "17"}}),
            "events{shard=3,node=17}");
}

TEST(MetricsRegistry, CountersAccumulate) {
  MetricsRegistry registry;
  EXPECT_TRUE(registry.empty());
  registry.add_counter("sent", 3);
  registry.add_counter("sent", 4);
  registry.add_counter("sent", 1, {{"shard", "0"}});
  EXPECT_EQ(registry.counter("sent"), 7u);
  EXPECT_EQ(registry.counter("sent{shard=0}"), 1u);
  EXPECT_EQ(registry.counter("absent"), 0u);
  EXPECT_FALSE(registry.empty());
}

TEST(MetricsRegistry, GaugesKeepLatestValue) {
  MetricsRegistry registry;
  registry.set_gauge("rate", 0.25);
  registry.set_gauge("rate", 0.75);
  ASSERT_EQ(registry.gauges().count("rate"), 1u);
  EXPECT_EQ(registry.gauges().at("rate"), 0.75);
}

TEST(MetricsRegistry, HistogramCellsAreStable) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("latency", {{"node", "5"}});
  h.add(1);
  h.add(3);
  // Second lookup returns the same cell.
  EXPECT_EQ(registry.histogram("latency", {{"node", "5"}}).total(), 2u);
}

TEST(MetricsRegistry, JsonProjectionCarriesAllSections) {
  MetricsRegistry registry;
  registry.add_counter("sent", 5, {{"series", "overlay"}});
  registry.set_gauge("completion", 0.5);
  Histogram& h = registry.histogram("degree");
  for (std::size_t i = 1; i <= 4; ++i) h.add(i);

  const auto doc = runner::Json::parse(to_json(registry).dump());
  EXPECT_EQ(doc.at("counters").at("sent{series=overlay}").as_uint(), 5u);
  EXPECT_EQ(doc.at("gauges").at("completion").as_double(), 0.5);
  const auto& deg = doc.at("histograms").at("degree");
  EXPECT_EQ(deg.at("count").as_uint(), 4u);
  EXPECT_EQ(deg.at("mean").as_double(), 2.5);
  EXPECT_TRUE(deg.contains("p50"));
  EXPECT_TRUE(deg.contains("p99"));
  EXPECT_EQ(deg.at("max").as_double(), 4.0);
}

}  // namespace
}  // namespace ppo::obs
