// Checkpoint/restore contract (DESIGN.md §13), three layers deep:
//
//  1. CheckpointIo       — Writer/Reader primitives: round-trips,
//                          bounds checks, tag guards, CRC-32 vectors.
//  2. CheckpointFile     — the sealed file format: atomic save,
//                          validated load, and the corruption matrix
//                          (truncated / flipped byte / wrong magic /
//                          wrong version / graph mismatch / config
//                          mismatch / backend mismatch), each mapping
//                          to its own distinct clean Status.
//  3. CheckpointResume   — the end-to-end property on both backends:
//                          save mid-run, restore into a fresh
//                          process-equivalent service, and the resumed
//                          trajectory is BIT-IDENTICAL to the
//                          uninterrupted run — serial and sharded, for
//                          every K, cross-K, with the all-arms
//                          workload (loss + defended adversary +
//                          observer) live. Plus last-good fallback
//                          when the newest file is corrupt.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "ckpt/io.hpp"
#include "graph/generators.hpp"
#include "telemetry/service_mode.hpp"

namespace {

using namespace ppo;

// ---------------------------------------------------------------------
// CheckpointIo
// ---------------------------------------------------------------------

TEST(CheckpointIo, WriterReaderRoundTrip) {
  ckpt::Writer w;
  w.u8(0xAB);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.f64(-1234.5e-7);
  w.b(true);
  w.b(false);
  w.size(42);
  w.str("pseudonym");
  w.str("");
  w.u64_vec({1, 2, 3});
  w.tag(0x504F4E47u);

  ckpt::Reader r(w.buffer());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.f64(), -1234.5e-7);
  EXPECT_TRUE(r.b());
  EXPECT_FALSE(r.b());
  EXPECT_EQ(r.size(), 42u);
  EXPECT_EQ(r.str(), "pseudonym");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.u64_vec(), (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_NO_THROW(r.tag(0x504F4E47u));
  EXPECT_TRUE(r.done());
}

TEST(CheckpointIo, RngStateRoundTripContinuesIdentically) {
  Rng original(1234);
  for (int i = 0; i < 100; ++i) original.next_u64();

  ckpt::Writer w;
  w.rng(original);
  ckpt::Reader r(w.buffer());
  Rng restored = r.rng();

  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(original.next_u64(), restored.next_u64());
}

TEST(CheckpointIo, ReaderThrowsOnOverrun) {
  ckpt::Writer w;
  w.u32(7);
  ckpt::Reader r(w.buffer());
  EXPECT_NO_THROW(r.u32());
  EXPECT_THROW(r.u8(), ckpt::ParseError);
}

TEST(CheckpointIo, ReaderThrowsOnTagMismatch) {
  ckpt::Writer w;
  w.tag(0x11111111u);
  ckpt::Reader r(w.buffer());
  EXPECT_THROW(r.tag(0x22222222u), ckpt::ParseError);
}

TEST(CheckpointIo, ReaderRejectsOversizedLengthField) {
  // A corrupt length must become a diagnostic, not a bad_alloc.
  ckpt::Writer w;
  w.u64(~0ull);
  ckpt::Reader r(w.buffer());
  EXPECT_THROW(r.size(), ckpt::ParseError);
}

TEST(CheckpointIo, Crc32KnownVector) {
  // The classic IEEE 802.3 check value.
  EXPECT_EQ(ckpt::crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(ckpt::crc32("", 0), 0x00000000u);
}

// ---------------------------------------------------------------------
// CheckpointFile
// ---------------------------------------------------------------------

std::string temp_dir(const char* name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

ckpt::Header sample_header() {
  ckpt::Header h;
  h.backend = ckpt::BackendKind::kSharded;
  h.shards_hint = 4;
  h.graph_fingerprint = 0x1111;
  h.config_hash = 0x2222;
  h.seed = 42;
  h.sim_time = 12.5;
  return h;
}

std::string write_sample(const std::string& dir, std::uint64_t index,
                         const std::string& payload = "payload-bytes") {
  const std::string path = ckpt::checkpoint_path(dir, index);
  std::string error;
  EXPECT_TRUE(ckpt::save_file(path, sample_header(), payload, &error))
      << error;
  return path;
}

TEST(CheckpointFile, SaveLoadRoundTrip) {
  const std::string dir = temp_dir("ckpt_roundtrip");
  const std::string path = write_sample(dir, 3, "the-payload");

  const ckpt::LoadResult res = ckpt::load_file(path);
  ASSERT_TRUE(res.ok()) << res.message;
  EXPECT_EQ(res.header.backend, ckpt::BackendKind::kSharded);
  EXPECT_EQ(res.header.shards_hint, 4u);
  EXPECT_EQ(res.header.graph_fingerprint, 0x1111u);
  EXPECT_EQ(res.header.config_hash, 0x2222u);
  EXPECT_EQ(res.header.seed, 42u);
  EXPECT_EQ(res.header.sim_time, 12.5);
  EXPECT_EQ(res.payload, "the-payload");
  // No .tmp residue: the write was atomic.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(CheckpointFile, MissingFileIsIoError) {
  const ckpt::LoadResult res = ckpt::load_file("/nonexistent/nope.ppoc");
  EXPECT_EQ(res.status, ckpt::Status::kIoError);
  EXPECT_FALSE(res.message.empty());
}

// The corruption matrix: every way a file can be bad yields its own
// Status and a non-empty diagnostic — fail closed, never UB.
TEST(CheckpointFile, CorruptionMatrix) {
  const std::string dir = temp_dir("ckpt_matrix");
  const std::string good = write_sample(dir, 0);
  std::string bytes;
  {
    std::ifstream in(good, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  const auto write_variant = [&](const std::string& name,
                                 const std::string& data) {
    const std::string path = dir + "/" + name;
    std::ofstream out(path, std::ios::binary);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    return path;
  };

  {  // Truncated mid-payload.
    const auto res = ckpt::load_file(
        write_variant("trunc.ppoc", bytes.substr(0, bytes.size() - 5)));
    EXPECT_EQ(res.status, ckpt::Status::kTruncated);
    EXPECT_FALSE(res.message.empty());
  }
  {  // Shorter than the fixed preamble.
    const auto res =
        ckpt::load_file(write_variant("stub.ppoc", bytes.substr(0, 8)));
    EXPECT_EQ(res.status, ckpt::Status::kTruncated);
  }
  {  // One flipped payload byte: CRC catches it.
    std::string flipped = bytes;
    flipped[flipped.size() - 3] ^= 0x40;
    const auto res = ckpt::load_file(write_variant("flip.ppoc", flipped));
    EXPECT_EQ(res.status, ckpt::Status::kBadCrc);
    EXPECT_FALSE(res.message.empty());
  }
  {  // Wrong magic: not one of ours.
    std::string magic = bytes;
    magic[0] = 'X';
    const auto res = ckpt::load_file(write_variant("magic.ppoc", magic));
    EXPECT_EQ(res.status, ckpt::Status::kBadMagic);
  }
  {  // Future format version.
    std::string ver = bytes;
    ver[4] = 99;
    const auto res = ckpt::load_file(write_variant("ver.ppoc", ver));
    EXPECT_EQ(res.status, ckpt::Status::kBadVersion);
    EXPECT_FALSE(res.message.empty());
  }
  // The original is still pristine (the matrix wrote copies).
  EXPECT_TRUE(ckpt::load_file(good).ok());
}

TEST(CheckpointFile, CompatGateDistinguishesMismatches) {
  const ckpt::Header h = sample_header();
  EXPECT_EQ(ckpt::check_compat(h, ckpt::BackendKind::kSharded, 0x1111,
                               0x2222),
            ckpt::Status::kOk);
  EXPECT_EQ(ckpt::check_compat(h, ckpt::BackendKind::kSharded, 0xBAD,
                               0x2222),
            ckpt::Status::kGraphMismatch);
  EXPECT_EQ(ckpt::check_compat(h, ckpt::BackendKind::kSharded, 0x1111,
                               0xBAD),
            ckpt::Status::kConfigMismatch);
  EXPECT_EQ(ckpt::check_compat(h, ckpt::BackendKind::kSerial, 0x1111,
                               0x2222),
            ckpt::Status::kUnsupported);
}

TEST(CheckpointFile, GraphFingerprintSeparatesGraphs) {
  Rng r1(1), r2(1), r3(2);
  const graph::Graph a = graph::holme_kim(100, 4, 0.2, r1);
  const graph::Graph b = graph::holme_kim(100, 4, 0.2, r2);
  const graph::Graph c = graph::holme_kim(100, 4, 0.2, r3);
  EXPECT_EQ(ckpt::fingerprint_graph(a), ckpt::fingerprint_graph(b));
  EXPECT_NE(ckpt::fingerprint_graph(a), ckpt::fingerprint_graph(c));
}

TEST(CheckpointFile, ListCheckpointsSortsAndFilters) {
  const std::string dir = temp_dir("ckpt_list");
  write_sample(dir, 10);
  write_sample(dir, 2);
  write_sample(dir, 7);
  {  // Unrelated files are ignored.
    std::ofstream out(dir + "/notes.txt");
    out << "not a checkpoint\n";
  }
  const auto files = ckpt::list_checkpoints(dir);
  ASSERT_EQ(files.size(), 3u);
  EXPECT_EQ(files[0], ckpt::checkpoint_path(dir, 2));
  EXPECT_EQ(files[1], ckpt::checkpoint_path(dir, 7));
  EXPECT_EQ(files[2], ckpt::checkpoint_path(dir, 10));
  EXPECT_TRUE(ckpt::list_checkpoints(dir + "/missing").empty());
}

// ---------------------------------------------------------------------
// CheckpointResume — the end-to-end bit-identity property
// ---------------------------------------------------------------------

telemetry::ServiceModeOptions resume_workload(std::size_t shards) {
  telemetry::ServiceModeOptions opt;
  opt.nodes = 300;
  opt.alpha = 0.6;
  opt.seed = 7;
  opt.shards = shards;
  opt.horizon = 10.0;
  opt.slice = 1.0;
  // All-arms: link faults, defended mixed adversary, passive observer
  // — every checkpointable subsystem carries live state.
  opt.loss = 0.05;
  opt.adversary_fraction = 0.1;
  opt.adversary_attack = "mixed";
  opt.defended = true;
  opt.observer_coverage = 0.2;
  return opt;
}

void expect_same_trajectory(const telemetry::ServiceModeReport& a,
                            const telemetry::ServiceModeReport& b) {
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.overlay_edges, b.overlay_edges);
  EXPECT_EQ(a.online, b.online);
  EXPECT_EQ(a.health.requests_sent, b.health.requests_sent);
  EXPECT_EQ(a.health.responses_sent, b.health.responses_sent);
  EXPECT_EQ(a.health.exchanges_completed, b.health.exchanges_completed);
  EXPECT_EQ(a.health.messages_sent, b.health.messages_sent);
  EXPECT_EQ(a.health.messages_delivered, b.health.messages_delivered);
  EXPECT_EQ(a.health.messages_dropped, b.health.messages_dropped);
}

/// The kill-and-resume property: run to `cut` with checkpoints, then
/// resume in a fresh service to the full horizon — the result must be
/// bit-identical to the uninterrupted run at `resume_shards`.
void check_kill_and_resume(std::size_t save_shards,
                           std::size_t resume_shards, const char* tag,
                           double pseudonym_lifetime = 90.0) {
  const std::string dir = temp_dir(tag);

  auto straight = resume_workload(resume_shards);
  straight.pseudonym_lifetime = pseudonym_lifetime;
  const auto reference = telemetry::run_service_mode(straight);
  ASSERT_TRUE(reference.horizon_reached);

  auto first = resume_workload(save_shards);
  first.pseudonym_lifetime = pseudonym_lifetime;
  first.horizon = 5.0;
  first.checkpoint_every = 5.0;
  first.checkpoint_dir = dir;
  const auto half = telemetry::run_service_mode(first);
  ASSERT_EQ(half.checkpoints_written, 1u);

  auto second = resume_workload(resume_shards);
  second.pseudonym_lifetime = pseudonym_lifetime;
  second.checkpoint_dir = dir;
  second.resume = true;
  const auto resumed = telemetry::run_service_mode(second);
  ASSERT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.resumed_at, 5.0);
  EXPECT_TRUE(resumed.rejected_checkpoints.empty());
  expect_same_trajectory(reference, resumed);
}

TEST(CheckpointResume, SerialBitIdentical) {
  check_kill_and_resume(0, 0, "ckpt_resume_serial");
}

TEST(CheckpointResume, ShardedK1BitIdentical) {
  check_kill_and_resume(1, 1, "ckpt_resume_k1");
}

TEST(CheckpointResume, ShardedK4BitIdentical) {
  check_kill_and_resume(4, 4, "ckpt_resume_k4");
}

TEST(CheckpointResume, SerialRenewalWaveCrossesRestore) {
  // Regression: every initially-online node mints its pseudonym at
  // t=0, so all renewal alarms fire at exactly lifetime + 1e-9 — a
  // wall of events tied in time. Their journaled tickets must carry
  // the original sequence numbers; a journal of default {0,0} tickets
  // lets the priority queue break the tie in unspecified order, which
  // permutes the shared-rng mint sequence across owners and silently
  // diverges the trajectory. Lifetime 6 puts the wave at t≈6, after
  // the t=5 checkpoint and before the horizon.
  check_kill_and_resume(0, 0, "ckpt_resume_renewal_serial", 6.0);
}

TEST(CheckpointResume, ShardedRenewalWaveCrossesRestore) {
  check_kill_and_resume(4, 4, "ckpt_resume_renewal_k4", 6.0);
}

TEST(CheckpointResume, CrossShardCountK4ToK2) {
  // Sharded checkpoints are K-portable: every sequence counter is
  // actor-keyed, so a K=4 snapshot restores at K=2 onto the same
  // trajectory.
  check_kill_and_resume(4, 2, "ckpt_resume_k4_to_k2");
}

TEST(CheckpointResume, FallsBackPastCorruptNewest) {
  const std::string dir = temp_dir("ckpt_fallback");

  auto straight = resume_workload(0);
  const auto reference = telemetry::run_service_mode(straight);

  auto first = resume_workload(0);
  first.horizon = 7.0;
  first.checkpoint_every = 3.0;  // rounds up to slices: t=3 and t=6
  first.checkpoint_dir = dir;
  const auto half = telemetry::run_service_mode(first);
  ASSERT_EQ(half.checkpoints_written, 2u);

  // Flip one byte in the newest snapshot: resume must reject it with
  // a clean bad_crc diagnostic and restore the previous one.
  const auto files = ckpt::list_checkpoints(dir);
  ASSERT_EQ(files.size(), 2u);
  {
    std::fstream f(files.back(),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(100);
    char c = 0;
    f.seekg(100);
    f.get(c);
    c ^= 0x10;
    f.seekp(100);
    f.put(c);
  }

  auto second = resume_workload(0);
  second.checkpoint_dir = dir;
  second.resume = true;
  const auto resumed = telemetry::run_service_mode(second);
  ASSERT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.resumed_at, 3.0);
  ASSERT_EQ(resumed.rejected_checkpoints.size(), 1u);
  EXPECT_NE(resumed.rejected_checkpoints[0].find("bad_crc"),
            std::string::npos);
  expect_same_trajectory(reference, resumed);
}

TEST(CheckpointResume, ColdStartsWhenNothingSurvives) {
  const std::string dir = temp_dir("ckpt_cold");
  {  // The only file present is garbage.
    std::ofstream out(ckpt::checkpoint_path(dir, 1), std::ios::binary);
    out << "garbage, not a checkpoint";
  }
  auto opt = resume_workload(0);
  opt.checkpoint_dir = dir;
  opt.resume = true;
  const auto run = telemetry::run_service_mode(opt);
  EXPECT_FALSE(run.resumed);
  ASSERT_EQ(run.rejected_checkpoints.size(), 1u);
  EXPECT_NE(run.rejected_checkpoints[0].find("bad_magic"),
            std::string::npos);
  // ... and the cold start is still the canonical trajectory.
  const auto reference = telemetry::run_service_mode(resume_workload(0));
  expect_same_trajectory(reference, run);
}

TEST(CheckpointResume, RejectsCheckpointFromDifferentWorkload) {
  const std::string dir = temp_dir("ckpt_wrong_config");
  auto first = resume_workload(0);
  first.horizon = 5.0;
  first.checkpoint_every = 5.0;
  first.checkpoint_dir = dir;
  ASSERT_EQ(telemetry::run_service_mode(first).checkpoints_written, 1u);

  auto second = resume_workload(0);
  second.checkpoint_dir = dir;
  second.resume = true;
  second.loss = 0.2;  // different workload → config_mismatch
  const auto run = telemetry::run_service_mode(second);
  EXPECT_FALSE(run.resumed);
  ASSERT_EQ(run.rejected_checkpoints.size(), 1u);
  EXPECT_NE(run.rejected_checkpoints[0].find("config_mismatch"),
            std::string::npos);
}

TEST(CheckpointResume, RejectsCheckpointFromOtherBackend) {
  const std::string dir = temp_dir("ckpt_wrong_backend");
  auto first = resume_workload(4);
  first.horizon = 5.0;
  first.checkpoint_every = 5.0;
  first.checkpoint_dir = dir;
  ASSERT_EQ(telemetry::run_service_mode(first).checkpoints_written, 1u);

  auto second = resume_workload(0);  // serial cannot eat a sharded file
  second.checkpoint_dir = dir;
  second.resume = true;
  const auto run = telemetry::run_service_mode(second);
  EXPECT_FALSE(run.resumed);
  ASSERT_EQ(run.rejected_checkpoints.size(), 1u);
  EXPECT_NE(run.rejected_checkpoints[0].find("unsupported"),
            std::string::npos);
}

}  // namespace
