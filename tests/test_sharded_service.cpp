// ShardedOverlayService: K-invariance of full protocol runs (plain
// churn, link faults, correlated node crashes), the mix-mode shard
// restriction, and scenario-level equality between shard counts at
// figure scale.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "churn/churn_model.hpp"
#include "common/check.hpp"
#include "experiments/scenario.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_stream.hpp"
#include "graph/generators.hpp"
#include "overlay/sharded_service.hpp"
#include "sim/sharded_simulator.hpp"

namespace ppo::overlay {
namespace {

graph::Graph test_graph(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return graph::holme_kim(n, 3, 0.3, rng);
}

OverlayServiceOptions small_options() {
  OverlayServiceOptions options;
  options.params.cache_size = 60;
  options.params.shuffle_length = 8;
  options.params.target_links = 10;
  options.params.pseudonym_lifetime = 30.0;
  return options;
}

/// Everything we compare across shard counts: the full overlay edge
/// set, online mask, health counters and the event count. Equality
/// here means equal trajectories for all practical purposes.
struct RunOutcome {
  std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;
  std::vector<char> online;
  metrics::ProtocolHealth health;
  std::uint64_t events = 0;
  std::uint64_t replacements = 0;
};

bool operator==(const RunOutcome& a, const RunOutcome& b) {
  return a.edges == b.edges && a.online == b.online && a.events == b.events &&
         a.replacements == b.replacements &&
         a.health.requests_sent == b.health.requests_sent &&
         a.health.responses_sent == b.health.responses_sent &&
         a.health.exchanges_completed == b.health.exchanges_completed &&
         a.health.request_timeouts == b.health.request_timeouts &&
         a.health.exchanges_aborted == b.health.exchanges_aborted &&
         a.health.messages_sent == b.health.messages_sent &&
         a.health.messages_dropped == b.health.messages_dropped &&
         a.health.messages_delivered == b.health.messages_delivered;
}

RunOutcome run_sharded(std::size_t shards, const graph::Graph& trust,
                       OverlayServiceOptions options, std::uint64_t seed,
                       double horizon,
                       std::vector<fault::NodeCrashEvent> crashes = {}) {
  const churn::ExponentialChurn model =
      churn::ExponentialChurn::from_availability(0.6, 10.0);
  sim::ShardedSimulator::Options so;
  so.shards = shards;
  so.num_actors = trust.num_nodes();
  so.lookahead = options.transport.min_latency;
  sim::ShardedSimulator sim(so);
  ShardedOverlayService service(sim, trust, model, options, seed);

  std::unique_ptr<fault::FaultInjector> injector;
  if (!crashes.empty()) {
    fault::FaultInjector::Hooks hooks;
    hooks.fail_node = [&service](graph::NodeId v) {
      service.churn_driver().fail_permanently(v);
    };
    hooks.revive_node = [&service](graph::NodeId v) {
      service.churn_driver().revive(v);
    };
    injector = std::make_unique<fault::FaultInjector>(
        sim, fault::ServiceFaults{}, std::move(hooks), std::move(crashes));
    injector->arm();
  }

  service.start();
  sim.run_until(horizon);

  RunOutcome out;
  out.edges = service.overlay_snapshot().edges();
  const auto& mask = service.online_mask();
  out.online.resize(trust.num_nodes());
  for (graph::NodeId v = 0; v < trust.num_nodes(); ++v)
    out.online[v] = mask.contains(v) ? 1 : 0;
  out.health = service.protocol_health();
  out.events = sim.events_executed();
  out.replacements = service.total_replacements().replacements();
  return out;
}

TEST(ShardedService, ChurnOnlyTrajectoriesAreShardCountInvariant) {
  const graph::Graph trust = test_graph(120, 7);
  const auto base = run_sharded(1, trust, small_options(), 11, 25.0);
  EXPECT_GT(base.health.messages_sent, 0u);
  EXPECT_GT(base.edges.size(), trust.num_edges());  // pseudonym links exist
  for (const std::size_t shards : {2, 4, 8}) {
    const auto out = run_sharded(shards, trust, small_options(), 11, 25.0);
    EXPECT_TRUE(base == out) << "K=" << shards << " diverged";
  }
}

TEST(ShardedService, LinkFaultTrajectoriesAreShardCountInvariant) {
  const graph::Graph trust = test_graph(100, 9);
  OverlayServiceOptions options = small_options();
  fault::FaultPlan plan;
  plan.drop_probability = 0.2;
  plan.duplicate_probability = 0.1;
  plan.per_link_streams = true;
  plan.seed = 0xFEED;
  options.link_faults = plan;
  options.params.shuffle_timeout = 0.25;
  options.params.shuffle_max_retries = 2;

  const auto base = run_sharded(1, trust, options, 13, 20.0);
  EXPECT_GT(base.health.messages_dropped, 0u);
  for (const std::size_t shards : {2, 4}) {
    const auto out = run_sharded(shards, trust, options, 13, 20.0);
    EXPECT_TRUE(base == out) << "K=" << shards << " diverged";
  }
}

TEST(ShardedService, RequiresPerLinkStreamsForFaultPlans) {
  const graph::Graph trust = test_graph(40, 3);
  OverlayServiceOptions options = small_options();
  fault::FaultPlan plan;
  plan.drop_probability = 0.2;  // per_link_streams left false
  options.link_faults = plan;
  sim::ShardedSimulator::Options so;
  so.shards = 2;
  so.num_actors = trust.num_nodes();
  so.lookahead = options.transport.min_latency;
  sim::ShardedSimulator sim(so);
  const churn::ExponentialChurn model =
      churn::ExponentialChurn::from_availability(0.6, 10.0);
  EXPECT_THROW(ShardedOverlayService(sim, trust, model, options, 1),
               CheckError);
}

TEST(ShardedService, NodeCrashTrajectoriesAreShardCountInvariant) {
  const graph::Graph trust = test_graph(100, 21);
  fault::FaultPlan plan;
  plan.seed = 0xC4A5;
  plan.node_crashes.push_back({5.0, 10, 15.0});
  plan.node_crashes.push_back({8.0, 5, -1.0});
  const auto crashes =
      fault::materialize_node_crashes(plan, trust.num_nodes());
  ASSERT_EQ(crashes.size(), 15u);

  const auto base =
      run_sharded(1, trust, small_options(), 17, 20.0, crashes);
  for (const std::size_t shards : {2, 8}) {
    const auto out =
        run_sharded(shards, trust, small_options(), 17, 20.0, crashes);
    EXPECT_TRUE(base == out) << "K=" << shards << " diverged";
  }
}

TEST(ShardedService, MixModeRunsOnMultipleShards) {
  const graph::Graph trust = test_graph(40, 5);
  OverlayServiceOptions options = small_options();
  options.use_mix_network = true;
  const churn::ExponentialChurn model =
      churn::ExponentialChurn::from_availability(0.6, 10.0);

  // The exit hop crosses shards, so it must clear the lookahead.
  sim::ShardedSimulator::Options so;
  so.shards = 2;
  so.num_actors = trust.num_nodes();
  so.lookahead = options.mix.min_hop_latency * 2.0;
  sim::ShardedSimulator starved(so);
  EXPECT_THROW(ShardedOverlayService(starved, trust, model, options, 1),
               CheckError);

  so.lookahead = options.mix.min_hop_latency;
  sim::ShardedSimulator two(so);
  ShardedOverlayService service(two, trust, model, options, 1);
  service.start();
  two.run_until(10.0);
  EXPECT_GT(service.protocol_health().messages_delivered, 0u);
}

// Figure-3-style scenario at reduced scale through the public runner:
// the sharded backend must give the SAME OverlayRunResult for K = 1
// and K = 8.
TEST(ShardedService, ScenarioRunnerIsShardCountInvariantAtFigureScale) {
  const graph::Graph trust = test_graph(200, 33);
  experiments::OverlayScenario scenario;
  scenario.churn.alpha = 0.5;
  scenario.window.warmup = 20.0;
  scenario.window.measure = 10.0;
  scenario.window.sample_every = 5.0;
  scenario.window.apl_sources = 16;
  scenario.seed = 77;
  scenario.params = small_options().params;

  scenario.shards = 1;
  const auto k1 = experiments::run_overlay(trust, scenario);
  scenario.shards = 8;
  const auto k8 = experiments::run_overlay(trust, scenario);

  EXPECT_EQ(k1.stats.frac_disconnected.mean(),
            k8.stats.frac_disconnected.mean());
  EXPECT_EQ(k1.stats.norm_apl.mean(), k8.stats.norm_apl.mean());
  EXPECT_EQ(k1.replacements, k8.replacements);
  EXPECT_EQ(k1.messages_total, k8.messages_total);
  EXPECT_EQ(k1.final_total_edges, k8.final_total_edges);
  EXPECT_EQ(k1.health.exchanges_completed, k8.health.exchanges_completed);
  EXPECT_EQ(k1.health.messages_delivered, k8.health.messages_delivered);

  // And the sharded path actually simulated something.
  EXPECT_GT(k1.messages_total, 0u);
}

TEST(ShardedService, ScenarioRunsPseudonymBlackoutsOnShardedBackend) {
  const graph::Graph trust = test_graph(60, 41);
  experiments::OverlayScenario scenario;
  scenario.window.warmup = 8.0;
  scenario.window.measure = 5.0;
  scenario.service_faults.pseudonym_blackouts.push_back({1.0, 6.0});

  scenario.shards = 1;
  const auto k1 = experiments::run_overlay(trust, scenario);
  scenario.shards = 3;
  const auto k3 = experiments::run_overlay(trust, scenario);
  EXPECT_EQ(k1.messages_total, k3.messages_total);
  EXPECT_EQ(k1.health.exchanges_completed, k3.health.exchanges_completed);
  EXPECT_GT(k1.messages_total, 0u);

  // Relay crashes have no sharded counterpart (no mix mode here).
  scenario.service_faults.relay_crashes.push_back({0, 1.0, -1.0});
  EXPECT_THROW(experiments::run_overlay(trust, scenario), CheckError);
}

}  // namespace
}  // namespace ppo::overlay
