// Event-engine semantics: ordering, time advancement, periodic tasks.
#include <gtest/gtest.h>

#include <vector>

#include "sim/periodic.hpp"
#include "sim/simulator.hpp"

namespace ppo::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, StableOrderAtEqualTimes) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
  sim.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  double seen = -1.0;
  sim.schedule_at(4.5, [&] { seen = sim.now(); });
  sim.run_all();
  EXPECT_DOUBLE_EQ(seen, 4.5);
  EXPECT_DOUBLE_EQ(sim.now(), 4.5);
}

TEST(Simulator, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] { ++fired; });
  sim.schedule_at(3.0, [&] { ++fired; });
  EXPECT_EQ(sim.run_until(2.0), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, EventsMayScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_after(1.0, recurse);
  };
  sim.schedule_at(0.0, recurse);
  sim.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(Simulator, PastSchedulingThrows) {
  Simulator sim;
  sim.schedule_at(2.0, [] {});
  sim.run_all();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), ppo::CheckError);
  EXPECT_THROW(sim.schedule_after(-0.5, [] {}), ppo::CheckError);
}

TEST(Simulator, StepExecutesExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, ClearDropsPending) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.clear();
  sim.run_all();
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(i, [] {});
  sim.run_all();
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(PeriodicTask, FiresAtPhaseThenEveryPeriod) {
  Simulator sim;
  std::vector<double> times;
  auto task = PeriodicTask::start(sim, 0.5, 2.0, [&] { times.push_back(sim.now()); });
  sim.run_until(7.0);
  ASSERT_EQ(times.size(), 4u);
  EXPECT_DOUBLE_EQ(times[0], 0.5);
  EXPECT_DOUBLE_EQ(times[1], 2.5);
  EXPECT_DOUBLE_EQ(times[3], 6.5);
  task.cancel();
}

TEST(PeriodicTask, CancelStopsFutureTicks) {
  Simulator sim;
  int fired = 0;
  auto task = PeriodicTask::start(sim, 1.0, 1.0, [&] { ++fired; });
  sim.run_until(3.5);
  EXPECT_EQ(fired, 3);
  task.cancel();
  sim.run_until(10.0);
  EXPECT_EQ(fired, 3);
  EXPECT_FALSE(task.active());
}

TEST(PeriodicTask, CancelFromInsideCallback) {
  Simulator sim;
  int fired = 0;
  PeriodicTask task;
  task = PeriodicTask::start(sim, 1.0, 1.0, [&] {
    if (++fired == 2) task.cancel();
  });
  sim.run_until(10.0);
  EXPECT_EQ(fired, 2);
}

TEST(PeriodicTask, RejectsNonPositivePeriod) {
  Simulator sim;
  EXPECT_THROW(PeriodicTask::start(sim, 0.0, 0.0, [] {}), ppo::CheckError);
}

}  // namespace
}  // namespace ppo::sim
