// Metric collectors (§IV-C definitions) and time series.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "metrics/overlay_metrics.hpp"
#include "metrics/timeseries.hpp"

namespace ppo::metrics {
namespace {

TEST(MeasureGraph, ConnectedRing) {
  const graph::Graph g = graph::ring(10);
  Rng rng(1);
  const GraphMetrics m = measure_graph(g, {}, 10, rng);
  EXPECT_DOUBLE_EQ(m.fraction_disconnected, 0.0);
  EXPECT_EQ(m.online_nodes, 10u);
  EXPECT_EQ(m.largest_component, 10u);
  EXPECT_EQ(m.online_edges, 10u);
  // C_10 APL = 2.7777...; normalized = APL / 10 * 10 = APL.
  EXPECT_NEAR(m.avg_path_length, 25.0 / 9.0, 1e-9);
  EXPECT_NEAR(m.normalized_avg_path_length, m.avg_path_length, 1e-9);
}

TEST(MeasureGraph, MaskedMetrics) {
  const graph::Graph g = graph::ring(10);
  graph::NodeMask online(10, true);
  online.set(0, false);  // breaks the ring into a path of 9
  Rng rng(2);
  const GraphMetrics m = measure_graph(g, online, 10, rng);
  EXPECT_EQ(m.online_nodes, 9u);
  EXPECT_EQ(m.largest_component, 9u);
  EXPECT_DOUBLE_EQ(m.fraction_disconnected, 0.0);
  EXPECT_EQ(m.online_edges, 8u);
  // Path of 9: APL = 10/3; normalized scales by 10/9.
  EXPECT_NEAR(m.normalized_avg_path_length, (10.0 / 3.0) / 9.0 * 10.0, 1e-9);
  EXPECT_EQ(m.degree.count(1), 2u);  // two path endpoints
  EXPECT_EQ(m.degree.count(2), 7u);
}

TEST(MeasureGraph, FragmentedGraphPenalized) {
  graph::Graph g(8);
  g.add_edge(0, 1);  // pair
  g.add_edge(2, 3);
  g.add_edge(3, 4);  // triple
  Rng rng(3);
  const GraphMetrics m = measure_graph(g, {}, 8, rng);
  EXPECT_EQ(m.largest_component, 3u);
  EXPECT_DOUBLE_EQ(m.fraction_disconnected, 5.0 / 8.0);
  // Triple (path of 3): APL = 4/3; normalized = 4/3 / 3 * 8.
  EXPECT_NEAR(m.normalized_avg_path_length, 4.0 / 3.0 / 3.0 * 8.0, 1e-9);
}

TEST(TimeSeries, RecordAndQuery) {
  TimeSeries ts("demo");
  ts.record(1.0, 10.0);
  ts.record(2.0, 20.0);
  ts.record(3.0, 30.0);
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_DOUBLE_EQ(ts.last_value(), 30.0);
  EXPECT_DOUBLE_EQ(ts.mean_since(2.0), 25.0);
  EXPECT_DOUBLE_EQ(ts.mean_since(10.0), 0.0);
}

TEST(TimeSeries, LastValueOfEmptyThrows) {
  const TimeSeries ts("empty");
  EXPECT_THROW(ts.last_value(), CheckError);
}

TEST(TimeSeries, PrintAlignedSeries) {
  TimeSeries a("alpha"), b("beta");
  a.record(1.0, 0.5);
  b.record(1.0, 0.7);
  std::ostringstream os;
  print_time_series(os, "demo", {a, b});
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
  EXPECT_NE(out.find("0.7"), std::string::npos);
}

TEST(TimeSeries, PrintRejectsMismatchedGrids) {
  TimeSeries a("alpha"), b("beta");
  a.record(1.0, 0.5);
  b.record(2.0, 0.7);
  std::ostringstream os;
  EXPECT_THROW(print_time_series(os, "demo", {a, b}), CheckError);
}

}  // namespace
}  // namespace ppo::metrics
