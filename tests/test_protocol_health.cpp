// ProtocolHealth edge cases: zero denominators, retry-heavy merges of
// partial snapshots, and saturating counter aggregation.
#include <gtest/gtest.h>

#include <limits>

#include "metrics/protocol_health.hpp"

namespace ppo::metrics {
namespace {

constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();

TEST(ProtocolHealth, RatesAreZeroWithoutTraffic) {
  const ProtocolHealth h;
  EXPECT_EQ(h.completion_rate(), 0.0);
  EXPECT_EQ(h.delivery_rate(), 0.0);
}

TEST(ProtocolHealth, CompletionRateDiscountsRetries) {
  ProtocolHealth h;
  h.requests_sent = 10;   // includes 4 retransmissions
  h.request_retries = 4;  // -> 6 initiated exchanges
  h.exchanges_completed = 3;
  EXPECT_DOUBLE_EQ(h.completion_rate(), 0.5);
}

TEST(ProtocolHealth, CompletionRateClampsRetryExcess) {
  // A merge of partial snapshots can count a retry in one window and
  // its original request in another; the denominator must clamp to
  // zero instead of wrapping.
  ProtocolHealth h;
  h.requests_sent = 2;
  h.request_retries = 5;
  h.exchanges_completed = 2;
  EXPECT_EQ(h.completion_rate(), 0.0);
}

TEST(ProtocolHealth, DeliveryRate) {
  ProtocolHealth h;
  h.messages_sent = 8;
  h.messages_delivered = 6;
  EXPECT_DOUBLE_EQ(h.delivery_rate(), 0.75);
}

TEST(ProtocolHealth, MergeSumsEveryCounter) {
  ProtocolHealth a, b;
  a.requests_sent = 1;
  a.responses_sent = 2;
  a.exchanges_completed = 3;
  a.request_timeouts = 4;
  a.request_retries = 5;
  a.exchanges_aborted = 6;
  a.stale_responses = 7;
  a.messages_sent = 8;
  a.messages_delivered = 9;
  a.messages_dropped = 10;
  b = a;
  a.merge(b);
  EXPECT_EQ(a.requests_sent, 2u);
  EXPECT_EQ(a.responses_sent, 4u);
  EXPECT_EQ(a.exchanges_completed, 6u);
  EXPECT_EQ(a.request_timeouts, 8u);
  EXPECT_EQ(a.request_retries, 10u);
  EXPECT_EQ(a.exchanges_aborted, 12u);
  EXPECT_EQ(a.stale_responses, 14u);
  EXPECT_EQ(a.messages_sent, 16u);
  EXPECT_EQ(a.messages_delivered, 18u);
  EXPECT_EQ(a.messages_dropped, 20u);
}

TEST(ProtocolHealth, MergeSaturatesInsteadOfWrapping) {
  ProtocolHealth a, b;
  a.messages_sent = kMax - 1;
  b.messages_sent = 5;
  a.merge(b);
  EXPECT_EQ(a.messages_sent, kMax);
  // Saturated again stays put.
  a.merge(b);
  EXPECT_EQ(a.messages_sent, kMax);
}

TEST(ProtocolHealth, MergeReturnsSelfForChaining) {
  ProtocolHealth a, b, c;
  b.requests_sent = 1;
  c.requests_sent = 2;
  EXPECT_EQ(a.merge(b).merge(c).requests_sent, 3u);
}

}  // namespace
}  // namespace ppo::metrics
