// Sharded-core scaling bench: ONE large overlay simulation (default
// 100k nodes) run once per shard count, reporting wall time, event
// throughput, a trajectory fingerprint, peak RSS with bytes-per-node
// / bytes-per-edge breakdowns, and the run's Figure 3 connectivity
// point (fraction of online nodes outside the overlay's largest
// component at the horizon). The fingerprint must agree across every
// K >= 1 in --shard-list — that is the sharded core's determinism
// contract — so this bench doubles as a large-scale bit-identity
// check. K = 0 selects the legacy serial backend (its fingerprint
// legitimately differs; see DESIGN.md).
//
// Speedup is hardware-dependent: on a single-core runner every K
// costs about the same wall time and the numbers say so honestly.
//
// Overlay parameters are reduced relative to Table I (cache 50,
// shuffle length 10, target links 20): at 100k nodes the paper-size
// state would dominate memory, and the scaling question is about the
// event core, not cache churn.
//
// --json <path> writes the machine-readable report (schema_version
// shared with the figure benches).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "churn/churn_model.hpp"
#include "graph/generators.hpp"
#include "metrics/streaming_connectivity.hpp"
#include "overlay/service.hpp"
#include "overlay/sharded_service.hpp"
#include "sim/sharded_simulator.hpp"
#include "sim/simulator.hpp"
#include "telemetry/service_mode.hpp"

namespace {

using namespace ppo;

// The trajectory fingerprint (FNV-1a over the canonical edge list +
// health counters) moved to telemetry::trajectory_fingerprint so this
// bench, the service mode and the determinism tests all hash the same
// way.

struct RunReport {
  std::size_t shards = 0;  // 0 = serial backend
  double wall_seconds = 0.0;
  std::uint64_t events = 0;
  std::uint64_t fingerprint = 0;
  std::size_t online = 0;
  /// Figure 3 data point for this run: fraction of online nodes
  /// outside the overlay's largest connected component at the
  /// horizon (streaming union-find over the same edge list the
  /// fingerprint hashes).
  double fraction_disconnected = 0.0;
  std::size_t overlay_edges = 0;
  /// Memory telemetry. peak_rss_bytes is process-wide and monotone
  /// across runs in one invocation — only the FIRST run's reading is
  /// a clean per-configuration ceiling; later runs report the max so
  /// far. node_state_bytes is exact per service (arena reservation).
  std::size_t peak_rss_bytes = 0;
  std::size_t node_state_bytes = 0;
  metrics::ProtocolHealth health;
  std::vector<sim::ShardedSimulator::ShardStats> shard_stats;

  /// Worker threads the run actually used (the serial backend is one
  /// core); denominator of the per-core throughput below.
  std::size_t cores() const { return shards == 0 ? 1 : shards; }
  double events_per_second() const {
    return wall_seconds > 0.0 ? static_cast<double>(events) / wall_seconds
                              : 0.0;
  }
  double events_per_second_per_core() const {
    return events_per_second() / static_cast<double>(cores());
  }
};

/// Busy fraction of a shard's window wall time; 0 when unprofiled.
double busy_ratio(const sim::ShardedSimulator::ShardStats& st) {
  const double denom = st.busy_seconds + st.stall_seconds;
  return denom > 0.0 ? st.busy_seconds / denom : 0.0;
}

double stall_ratio(const sim::ShardedSimulator::ShardStats& st) {
  const double denom = st.busy_seconds + st.stall_seconds;
  return denom > 0.0 ? st.stall_seconds / denom : 0.0;
}

/// Per-run registry: health rollup plus the per-shard load profile
/// (dimension shard=K), the `metrics` block of each JSON run entry.
obs::MetricsRegistry run_metrics(const RunReport& report, bool profiled) {
  obs::MetricsRegistry registry;
  experiments::add_health_metrics(registry, report.health, {});
  for (std::size_t s = 0; s < report.shard_stats.size(); ++s) {
    const auto& st = report.shard_stats[s];
    const obs::MetricDims dims{{"shard", std::to_string(s)}};
    registry.add_counter("shard_events", st.events, dims);
    registry.add_counter("shard_windows", st.windows, dims);
    registry.add_counter("shard_mailbox_out", st.mailbox_out, dims);
    registry.set_gauge("shard_max_queue", static_cast<double>(st.max_queue),
                       dims);
    if (profiled) {
      registry.set_gauge("shard_busy_seconds", st.busy_seconds, dims);
      registry.set_gauge("shard_stall_seconds", st.stall_seconds, dims);
      registry.set_gauge("shard_busy_ratio", busy_ratio(st), dims);
      registry.set_gauge("shard_stall_ratio", stall_ratio(st), dims);
    }
  }
  registry.set_gauge("events_per_second", report.events_per_second());
  registry.set_gauge("events_per_second_per_core",
                     report.events_per_second_per_core());
  return registry;
}

std::vector<std::size_t> parse_shard_list(const std::string& text) {
  std::vector<std::size_t> out;
  for (const double v : bench::parse_double_list(text))
    out.push_back(static_cast<std::size_t>(v));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  bench::apply_logging(cli);

  const std::size_t nodes =
      static_cast<std::size_t>(cli.get_int("nodes", 100'000));
  const double alpha = cli.get_double("alpha", 0.5);
  const double horizon = cli.get_double("horizon", 20.0);
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const auto shard_list =
      parse_shard_list(cli.get_string("shard-list", "1,2,4,8"));
  if (shard_list.empty()) {
    std::cerr << "--shard-list needs at least one entry\n";
    return 2;
  }
  const bool profile = cli.get_bool("profile", false);
  const std::string trace_stem =
      cli.get_string("trace-out", "scale_single_run");

  overlay::OverlayServiceOptions options;
  options.params.cache_size = static_cast<std::size_t>(cli.get_int("cache", 50));
  options.params.shuffle_length =
      static_cast<std::size_t>(cli.get_int("shuffle-length", 10));
  options.params.target_links =
      static_cast<std::size_t>(cli.get_int("target-links", 20));
  options.params.pseudonym_lifetime = 90.0;

  std::cout << "==============================================================\n"
            << "scale_single_run — sharded-core scaling on one large run\n"
            << nodes << " nodes, alpha " << alpha << ", horizon " << horizon
            << " periods (seed " << seed << ")\n"
            << "==============================================================\n\n";

  // A scale-free, clustered trust graph stands in for the sampled
  // social graph — at this size the invitation pipeline would be the
  // bottleneck, not the simulation under test.
  Rng graph_rng(seed ^ 0x6EA4);
  const graph::Graph trust = graph::holme_kim(nodes, 5, 0.3, graph_rng);

  const churn::ExponentialChurn model =
      churn::ExponentialChurn::from_availability(alpha, 30.0);

  std::vector<RunReport> reports;
  for (const std::size_t shards : shard_list) {
    RunReport report;
    report.shards = shards;
    // One tracer per run so every K gets its own artefact pair; the
    // emitted records never touch simulation state, so the reported
    // fingerprints are bit-identical with --trace on or off.
    bench::TraceSession trace(cli);
    const bench::WallTimer timer;
    // Shared post-run measurement: canonical edge list (no snapshot
    // Graph), fingerprint, Figure 3 connectivity point, memory.
    metrics::StreamingConnectivity connectivity;
    const auto finish_run = [&](auto& service) {
      report.health = service.protocol_health();
      report.online = service.online_count();
      const auto edges = service.overlay_edges();
      report.overlay_edges = edges.size();
      report.fingerprint = telemetry::trajectory_fingerprint(edges, report.health);
      report.fraction_disconnected = connectivity.fraction_disconnected(
          nodes, edges, service.online_mask());
      report.node_state_bytes = service.node_state_bytes();
      report.peak_rss_bytes = bench::peak_rss_bytes();
    };
    if (shards == 0) {
      sim::Simulator sim;
      overlay::OverlayService service(sim, trust, model, options, Rng(seed));
      service.start();
      sim.run_until(horizon);
      report.events = sim.events_executed();
      finish_run(service);
    } else {
      sim::ShardedSimulator::Options so;
      so.shards = shards;
      so.num_actors = nodes;
      so.lookahead = options.transport.min_latency;
      so.profile = profile;
      sim::ShardedSimulator sim(so);
      overlay::ShardedOverlayService service(sim, trust, model, options, seed);
      service.start();
      sim.run_until(horizon);
      report.events = sim.events_executed();
      finish_run(service);
      report.shard_stats = sim.shard_stats();
    }
    report.wall_seconds = timer.seconds();
    trace.finish(trace_stem + ".k" + std::to_string(shards));
    reports.push_back(report);

    std::cout << "K=" << report.shards
              << (report.shards == 0 ? " (serial)" : "") << ": "
              << report.wall_seconds << " s, " << report.events
              << " events (" << report.events_per_second() << " events/s, "
              << report.events_per_second_per_core()
              << " events/s/core), fingerprint " << std::hex
              << report.fingerprint << std::dec << "\n"
              << "  overlay: " << report.overlay_edges << " edges, "
              << report.online << " online, fraction_disconnected "
              << report.fraction_disconnected << "\n"
              << "  memory: peak RSS "
              << report.peak_rss_bytes / (1024.0 * 1024.0) << " MiB ("
              << static_cast<double>(report.peak_rss_bytes) /
                     static_cast<double>(nodes)
              << " bytes/node, "
              << (report.overlay_edges == 0
                      ? 0.0
                      : static_cast<double>(report.peak_rss_bytes) /
                            static_cast<double>(report.overlay_edges))
              << " bytes/edge), node-state arena "
              << report.node_state_bytes / (1024.0 * 1024.0) << " MiB ("
              << static_cast<double>(report.node_state_bytes) /
                     static_cast<double>(nodes)
              << " bytes/node)\n";
    if (profile && !report.shard_stats.empty()) {
      std::cout << "  shard  events      mailbox_out  max_queue  busy_s   "
                   "stall_s  busy%   stall%\n";
      for (std::size_t s = 0; s < report.shard_stats.size(); ++s) {
        const auto& st = report.shard_stats[s];
        std::printf(
            "  %-6zu %-11llu %-12llu %-10zu %-8.3f %-8.3f %-7.3f %-7.3f\n",
            s, static_cast<unsigned long long>(st.events),
            static_cast<unsigned long long>(st.mailbox_out), st.max_queue,
            st.busy_seconds, st.stall_seconds, busy_ratio(st),
            stall_ratio(st));
      }
    }
  }

  // Bit-identity across every sharded K (the serial backend is a
  // different, equally valid trajectory).
  bool identical = true;
  std::uint64_t sharded_fp = 0;
  bool have_fp = false;
  for (const RunReport& r : reports) {
    if (r.shards == 0) continue;
    if (!have_fp) {
      sharded_fp = r.fingerprint;
      have_fp = true;
    } else if (r.fingerprint != sharded_fp) {
      identical = false;
    }
  }
  if (have_fp)
    std::cout << "\nsharded trajectories "
              << (identical ? "IDENTICAL across all K\n"
                            : "DIVERGE — determinism bug!\n");

  if (cli.has("json")) {
    const std::string path = cli.get_string("json", "");
    if (path.empty()) {
      std::cerr << "--json needs a path\n";
      return 2;
    }
    runner::Json doc = runner::Json::object();
    doc["artefact"] = std::string("scale_single_run");
    doc["schema_version"] =
        static_cast<std::int64_t>(experiments::kFigureJsonSchemaVersion);
    doc["nodes"] = static_cast<std::uint64_t>(nodes);
    doc["alpha"] = alpha;
    doc["horizon"] = horizon;
    doc["seed"] = seed;
    doc["identical_across_shards"] = identical;
    doc["peak_rss_bytes"] =
        static_cast<std::uint64_t>(bench::peak_rss_bytes());
    doc["trust_graph_bytes"] = static_cast<std::uint64_t>(
        trust.csr() != nullptr ? trust.csr()->memory_bytes() : 0);
    doc["trust_edges"] = static_cast<std::uint64_t>(trust.num_edges());
    // Figure 3 data point from the first run (peak RSS is monotone
    // across runs, so the first run's ceiling is the honest one).
    if (!reports.empty()) {
      const RunReport& first = reports.front();
      runner::Json point = runner::Json::object();
      point["nodes"] = static_cast<std::uint64_t>(nodes);
      point["alpha"] = alpha;
      point["fraction_disconnected"] = first.fraction_disconnected;
      point["overlay_edges"] = static_cast<std::uint64_t>(first.overlay_edges);
      point["online"] = static_cast<std::uint64_t>(first.online);
      point["peak_rss_bytes"] =
          static_cast<std::uint64_t>(first.peak_rss_bytes);
      point["bytes_per_node"] = static_cast<double>(first.peak_rss_bytes) /
                                static_cast<double>(nodes);
      point["bytes_per_edge"] =
          first.overlay_edges == 0
              ? 0.0
              : static_cast<double>(first.peak_rss_bytes) /
                    static_cast<double>(first.overlay_edges);
      point["node_state_bytes"] =
          static_cast<std::uint64_t>(first.node_state_bytes);
      point["node_state_bytes_per_node"] =
          static_cast<double>(first.node_state_bytes) /
          static_cast<double>(nodes);
      doc["fig3_point"] = std::move(point);
    }
    runner::Json runs = runner::Json::array();
    for (const RunReport& r : reports) {
      runner::Json entry = runner::Json::object();
      entry["shards"] = static_cast<std::uint64_t>(r.shards);
      entry["wall_seconds"] = r.wall_seconds;
      entry["events"] = r.events;
      entry["events_per_second"] = r.events_per_second();
      entry["events_per_second_per_core"] = r.events_per_second_per_core();
      entry["fingerprint"] = r.fingerprint;
      entry["online"] = static_cast<std::uint64_t>(r.online);
      entry["fraction_disconnected"] = r.fraction_disconnected;
      entry["overlay_edges"] = static_cast<std::uint64_t>(r.overlay_edges);
      entry["peak_rss_bytes"] = static_cast<std::uint64_t>(r.peak_rss_bytes);
      entry["node_state_bytes"] =
          static_cast<std::uint64_t>(r.node_state_bytes);
      entry["health"] = experiments::to_json(r.health);
      const obs::MetricsRegistry metrics = run_metrics(r, profile);
      entry["metrics"] = obs::to_json(metrics);
      if (!r.shard_stats.empty()) {
        runner::Json shard_profile = runner::Json::array();
        for (std::size_t s = 0; s < r.shard_stats.size(); ++s) {
          const auto& st = r.shard_stats[s];
          runner::Json row = runner::Json::object();
          row["shard"] = static_cast<std::uint64_t>(s);
          row["events"] = st.events;
          row["windows"] = st.windows;
          row["mailbox_out"] = st.mailbox_out;
          row["max_queue"] = static_cast<std::uint64_t>(st.max_queue);
          if (profile) {
            row["busy_seconds"] = st.busy_seconds;
            row["stall_seconds"] = st.stall_seconds;
            row["busy_ratio"] = busy_ratio(st);
            row["stall_ratio"] = stall_ratio(st);
          }
          shard_profile.push_back(std::move(row));
        }
        entry["shard_profile"] = std::move(shard_profile);
      }
      runs.push_back(std::move(entry));
    }
    doc["runs"] = std::move(runs);
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write --json file: " << path << "\n";
      return 1;
    }
    out << doc.dump(2) << "\n";
    std::cout << "wrote JSON report: " << path << "\n";
  }
  return identical ? 0 : 1;
}
