// Figure 8 reproduction: connectivity over time at alpha = 0.25
// (f = 0.5) for the trust graph and the overlay with r = 3 and r = 9.
//
// Expected shape (paper §V-B): the overlay starts trust-graph-like,
// improves within a few tens of shuffling periods and stabilizes near
// full connectivity after ~200 periods; the bare trust graph stays at
// ~70% disconnected throughout.
//
// --jobs N runs the three traces in parallel (bit-identical output
// for any N); --json <path> writes the machine-readable report.
#include <iostream>

#include "bench_common.hpp"
#include "metrics/timeseries.hpp"

int main(int argc, char** argv) {
  using namespace ppo;
  const Cli cli(argc, argv);
  bench::apply_logging(cli);
  experiments::Workbench bench(bench::workbench_options(cli));
  bench::print_header("Figure 8",
                      "connectivity over time, alpha = 0.25 (f = 0.5)",
                      bench);

  const double horizon = cli.get_double("horizon", 1000.0);
  const double sample_every = cli.get_double("sample-every", 20.0);
  const auto scale = bench::figure_scale(cli);

  const bench::WallTimer timer;
  const auto fig = experiments::convergence_trace(bench, horizon, sample_every,
                                                  scale.seed, scale.jobs);
  const double wall = timer.seconds();

  metrics::print_time_series(
      std::cout, "fraction of disconnected nodes over time (shuffle periods)",
      {fig.trust, fig.overlay_r3, fig.overlay_r9}, 3);
  bench::write_json_report(cli, "fig8_convergence", bench, scale,
                           experiments::to_json(fig), wall);
  return 0;
}
