// Routing-layer study (§I names "an additional routing layer" as a
// dissemination option): random-walk unicast to a pseudonym over the
// maintained overlay vs over trusted links only, across TTLs.
//
// Measured insight: success is dominated by HOLDER density — the
// target pseudonym sits in ~S_avg other nodes' link lists, and any
// holder completes delivery. That density is an overlay property, so
// even a walk restricted to trusted links profits from it; walking
// overlay links adds a modest further edge (better mixing). Without
// the overlay there would be no holders at all: the walk would need
// to hit the single owner.
#include <iostream>

#include "bench_common.hpp"
#include "churn/churn_model.hpp"
#include "common/stats.hpp"
#include "overlay/service.hpp"
#include "routing/random_walk.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace ppo;
  const Cli cli(argc, argv);
  bench::apply_logging(cli);
  experiments::Workbench bench(bench::workbench_options(cli));
  bench::print_header("Routing layer",
                      "random-walk unicast to pseudonyms, alpha = 0.75",
                      bench);

  const graph::Graph& trust = bench.trust_graph(0.5);
  sim::Simulator sim;
  const auto model = churn::ExponentialChurn::from_availability(0.75, 30.0);
  overlay::OverlayService service(sim, trust, model, {}, Rng(7));
  service.start();
  sim.run_until(300.0);

  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 200));
  Rng rng(11);

  TextTable table({"links", "ttl", "success", "mean hops", "mean msgs"});
  for (const bool trusted_only : {false, true}) {
    for (const std::size_t ttl : {2u, 4u, 8u, 16u, 32u}) {
      std::size_t delivered = 0;
      RunningStats hops, msgs;
      Rng pick(13);
      for (std::size_t t = 0; t < trials; ++t) {
        graph::NodeId source, target;
        do {
          source = static_cast<graph::NodeId>(
              pick.uniform_u64(trust.num_nodes()));
        } while (!service.is_online(source));
        do {
          target = static_cast<graph::NodeId>(
              pick.uniform_u64(trust.num_nodes()));
        } while (target == source || !service.is_online(target) ||
                 !service.node(target).own_pseudonym());
        routing::WalkOptions options;
        options.ttl = ttl;
        options.trusted_links_only = trusted_only;
        const auto result = routing::route_to_pseudonym(
            service, source, service.node(target).own_pseudonym()->value,
            options, rng);
        delivered += result.delivered;
        if (result.delivered) hops.add(static_cast<double>(result.hops));
        msgs.add(static_cast<double>(result.messages));
      }
      table.add_row({trusted_only ? "trusted-only" : "overlay",
                     std::to_string(ttl),
                     TextTable::num(static_cast<double>(delivered) /
                                    static_cast<double>(trials), 3),
                     hops.count() ? TextTable::num(hops.mean(), 1) : "-",
                     TextTable::num(msgs.mean(), 1)});
    }
  }
  table.print(std::cout);
  return 0;
}
