// Routing-layer study (§I names "an additional routing layer" as a
// dissemination option): random-walk unicast to a pseudonym over the
// maintained overlay vs over trusted links only, across TTLs.
//
// Measured insight: success is dominated by HOLDER density — the
// target pseudonym sits in ~S_avg other nodes' link lists, and any
// holder completes delivery. That density is an overlay property, so
// even a walk restricted to trusted links profits from it; walking
// overlay links adds a modest further edge (better mixing). Without
// the overlay there would be no holders at all: the walk would need
// to hit the single owner.
//
// --ttls T1,T2,...  walk TTLs                      (default 2,4,8,16,32)
// --trials T        walks per (links, ttl) combo   (default 200)
// --warmup W        overlay warmup in periods      (default 300)
// --replicas R      independently seeded overlays  (default 1)
// --jobs N runs the replica cells in parallel (bit-identical output
// for any N); --json <path> writes the machine-readable report.
#include <iostream>

#include "bench_common.hpp"
#include "churn/churn_model.hpp"
#include "common/stats.hpp"
#include "overlay/service.hpp"
#include "routing/random_walk.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace ppo;
  const Cli cli(argc, argv);
  bench::apply_logging(cli);
  experiments::Workbench bench(bench::workbench_options(cli));
  bench::print_header("Routing layer",
                      "random-walk unicast to pseudonyms, alpha = 0.75",
                      bench);

  const graph::Graph& trust = bench.trust_graph(0.5);
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 200));
  const double warmup = cli.get_double("warmup", 300.0);
  std::vector<std::size_t> ttls{2, 4, 8, 16, 32};
  if (cli.has("ttls")) {
    ttls.clear();
    for (const double t : bench::parse_double_list(cli.get_string("ttls", "")))
      ttls.push_back(static_cast<std::size_t>(t));
  }

  const auto scale = bench::figure_scale(cli);
  runner::SweepOptions opt;
  opt.jobs = scale.jobs;
  opt.root_seed = scale.seed;
  opt.progress = scale.progress;
  opt.label = "routing-walk";

  // One cell per replica: each grows its own independently seeded
  // overlay and evaluates every (links, ttl) combination on it.
  struct ComboOut {
    double success = 0.0;
    double mean_hops = 0.0;
    std::uint64_t hops_count = 0;  // delivered walks (hops samples)
    double mean_msgs = 0.0;
  };
  const std::size_t replicas =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   cli.get_int("replicas", 1)));
  bench::TraceSession trace(cli);
  trace.warn_if_parallel(scale.jobs == 0 ? runner::default_jobs() : scale.jobs);
  const bench::WallTimer timer;
  auto grid = runner::run_grid(
      replicas, opt, [&](const runner::CellInfo& cell) {
        sim::Simulator sim;
        const auto model =
            churn::ExponentialChurn::from_availability(0.75, 30.0);
        overlay::OverlayService service(sim, trust, model, {},
                                        Rng(derive_seed(cell.seed, 7)));
        service.start();
        sim.run_until(warmup);

        std::vector<ComboOut> combos;
        Rng rng(derive_seed(cell.seed, 11));
        for (const bool trusted_only : {false, true}) {
          for (const std::size_t ttl : ttls) {
            ComboOut out;
            std::size_t delivered = 0;
            RunningStats hops, msgs;
            Rng pick(derive_seed(cell.seed, 13));
            for (std::size_t t = 0; t < trials; ++t) {
              graph::NodeId source, target;
              do {
                source = static_cast<graph::NodeId>(
                    pick.uniform_u64(trust.num_nodes()));
              } while (!service.is_online(source));
              do {
                target = static_cast<graph::NodeId>(
                    pick.uniform_u64(trust.num_nodes()));
              } while (target == source || !service.is_online(target) ||
                       !service.node(target).own_pseudonym());
              routing::WalkOptions options;
              options.ttl = ttl;
              options.trusted_links_only = trusted_only;
              const auto result = routing::route_to_pseudonym(
                  service, source,
                  service.node(target).own_pseudonym()->value, options, rng);
              delivered += result.delivered;
              if (result.delivered)
                hops.add(static_cast<double>(result.hops));
              msgs.add(static_cast<double>(result.messages));
            }
            out.success = static_cast<double>(delivered) /
                          static_cast<double>(trials);
            out.mean_hops = hops.count() ? hops.mean() : 0.0;
            out.hops_count = hops.count();
            out.mean_msgs = msgs.mean();
            combos.push_back(out);
          }
        }
        return combos;
      });
  const double wall = timer.seconds();
  trace.finish("routing_walk");

  // Replica-averaged table + series, combos in (links, ttl) order.
  std::vector<Series> success, hops_series, msgs_series;
  TextTable table({"links", "ttl", "success", "mean hops", "mean msgs"});
  std::size_t combo = 0;
  for (const bool trusted_only : {false, true}) {
    const char* name = trusted_only ? "trusted-only" : "overlay";
    Series s{name, {}}, h{name, {}}, m{name, {}};
    for (const std::size_t ttl : ttls) {
      RunningStats sr, mr;
      RunningStats hr;  // per-replica mean hops over delivered walks
      std::uint64_t hops_n = 0;
      for (std::size_t r = 0; r < replicas; ++r) {
        const auto& c = grid.cells[r][combo];
        sr.add(c.success);
        mr.add(c.mean_msgs);
        if (c.hops_count > 0) {
          hr.add(c.mean_hops);
          hops_n += c.hops_count;
        }
      }
      s.values.push_back(sr.mean());
      h.values.push_back(hr.count() ? hr.mean() : 0.0);
      m.values.push_back(mr.mean());
      table.add_row({name, std::to_string(ttl),
                     TextTable::num(sr.mean(), 3),
                     hops_n ? TextTable::num(hr.mean(), 1) : "-",
                     TextTable::num(mr.mean(), 1)});
      ++combo;
    }
    success.push_back(std::move(s));
    hops_series.push_back(std::move(h));
    msgs_series.push_back(std::move(m));
  }
  table.print(std::cout);

  runner::Json fig = runner::Json::object();
  {
    std::vector<double> axis;
    for (const std::size_t ttl : ttls)
      axis.push_back(static_cast<double>(ttl));
    fig["ttls"] = runner::Json::array_of(axis);
  }
  const auto series_block = [](const std::vector<Series>& list) {
    runner::Json block = runner::Json::array();
    for (const auto& series : list)
      block.push_back(experiments::to_json(series));
    return block;
  };
  fig["success"] = series_block(success);
  fig["hops"] = series_block(hops_series);
  fig["messages"] = series_block(msgs_series);
  fig["replicas"] = static_cast<std::uint64_t>(replicas);
  fig["telemetry"] = experiments::to_json(grid.telemetry);
  bench::write_json_report(cli, "routing_walk", bench, scale, std::move(fig),
                           wall);
  return 0;
}
