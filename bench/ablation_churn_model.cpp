// Ablation: exponential vs Pareto (heavy-tailed) on/off durations at
// equal availability — both models appear in Yao et al., the paper
// evaluates only the exponential one.
//
// Expected outcome: at equal alpha, heavy-tailed churn produces some
// very long offline stretches (pseudonyms of those nodes expire, like
// temporary permanent departures) balanced by many short ones; the
// overlay remains robust, with mildly worse connectivity for small
// Pareto shapes (heavier tails).
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ppo;
  const Cli cli(argc, argv);
  bench::apply_logging(cli);
  experiments::Workbench bench(bench::workbench_options(cli));
  bench::print_header("Ablation", "exponential vs Pareto churn at equal alpha",
                      bench);

  const auto scale = bench::figure_scale(cli);
  const graph::Graph& trust = bench.trust_graph(0.5);

  TextTable table({"alpha", "churn model", "disconnected", "norm-APL",
                   "replacements"});
  for (const double alpha : {0.25, 0.5}) {
    for (const int model : {0, 1, 2}) {
      experiments::OverlayScenario scenario;
      scenario.churn.alpha = alpha;
      scenario.window = scale.window;
      scenario.seed =
          scale.seed ^ static_cast<std::uint64_t>(model * 77 + alpha * 512);
      std::string name = "exponential";
      if (model > 0) {
        scenario.churn.pareto = true;
        scenario.churn.pareto_shape = (model == 1) ? 3.0 : 1.5;
        name = "pareto(shape=" +
               TextTable::num(scenario.churn.pareto_shape, 1) + ")";
      }
      const auto run = experiments::run_overlay(trust, scenario);
      table.add_row({TextTable::num(alpha), name,
                     TextTable::num(run.stats.frac_disconnected.mean()),
                     TextTable::num(run.stats.norm_apl.mean(), 2),
                     std::to_string(run.replacements)});
    }
  }
  table.print(std::cout);
  return 0;
}
