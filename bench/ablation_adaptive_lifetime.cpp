// Ablation (paper §III-C future work): per-node adaptive pseudonym
// lifetime (factor x EWMA of the node's own offline durations) vs a
// fixed global lifetime, when the operator's assumed Toff is wrong.
//
// Scenario: actual mean offline time is 30 periods, but the fixed
// configuration assumes Toff = 10 (lifetime 30, i.e. true r = 1).
// Expected outcome: the misconfigured fixed lifetime degrades at low
// availability; the adaptive variant learns ~Toff and recovers the
// robustness of a correctly-tuned r = 3 without manual tuning.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ppo;
  const Cli cli(argc, argv);
  bench::apply_logging(cli);
  experiments::Workbench bench(bench::workbench_options(cli));
  bench::print_header("Ablation",
                      "adaptive pseudonym lifetime vs misconfigured fixed",
                      bench);

  const auto scale = bench::figure_scale(cli);
  const graph::Graph& trust = bench.trust_graph(0.5);

  TextTable table({"alpha", "variant", "disconnected", "norm-APL"});
  for (const double alpha : {0.125, 0.25, 0.5}) {
    for (const int variant : {0, 1, 2}) {
      experiments::OverlayScenario scenario;
      scenario.churn.alpha = alpha;  // true Toff stays 30
      scenario.window = scale.window;
      scenario.seed = scale.seed ^ static_cast<std::uint64_t>(
                                       variant * 1000 + alpha * 512);
      std::string name;
      switch (variant) {
        case 0:  // operator guessed Toff = 10 -> lifetime 30 (r = 1)
          scenario.params.pseudonym_lifetime = 30.0;
          name = "fixed-misconfigured(30sp)";
          break;
        case 1:  // correctly tuned fixed baseline (r = 3)
          scenario.params.pseudonym_lifetime = 90.0;
          name = "fixed-tuned(90sp)";
          break;
        case 2:  // adaptive, seeded with the same bad guess
          scenario.params.pseudonym_lifetime = 30.0;
          scenario.params.adaptive_lifetime = true;
          scenario.params.adaptive_lifetime_factor = 3.0;
          scenario.params.adaptive_min_lifetime = 10.0;
          scenario.params.adaptive_max_lifetime = 1000.0;
          name = "adaptive(3 x EWMA Toff)";
          break;
      }
      const auto run = experiments::run_overlay(trust, scenario);
      table.add_row({TextTable::num(alpha), name,
                     TextTable::num(run.stats.frac_disconnected.mean()),
                     TextTable::num(run.stats.norm_apl.mean(), 2)});
    }
  }
  table.print(std::cout);
  return 0;
}
