// §III-E-2 threat analysis, made empirical: colluding internal
// observers n (neighbor of a) and o_1..o_k (neighbors of b) try to
// detect an overlay link between their neighbors a and b. n plants a
// marker pseudonym P into a's cache only; the attack "succeeds" if b
// is seen holding P within one propagation window and some colluder
// o_i receives it from b within the next — the timing signature the
// paper describes.
//
// Expected outcome (matching the paper's argument): single-colluder
// success probability is small (a must pick b among all its overlay
// links and forward P among its whole cache); success grows with the
// number of colluders around b, and stays far below certainty — the
// basis for the paper's claim that the attack "is unlikely to occur".
#include <iostream>

#include "bench_common.hpp"
#include "churn/churn_model.hpp"
#include "overlay/service.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace ppo;
  const Cli cli(argc, argv);
  bench::apply_logging(cli);
  experiments::Workbench bench(bench::workbench_options(cli));
  bench::print_header("Attack study",
                      "§III-E timing analysis by colluding internal observers",
                      bench);

  const graph::Graph& trust = bench.trust_graph(0.5);
  const std::size_t trials =
      static_cast<std::size_t>(cli.get_int("trials", 400));
  const double window = cli.get_double("window", 2.0);

  // Full availability: the attack's best case (no churn noise).
  sim::Simulator sim;
  const auto model = churn::ExponentialChurn::from_availability(1.0, 30.0);
  overlay::OverlayService service(sim, trust, model, {}, Rng(7));
  service.start();
  sim.run_until(100.0);  // converged overlay

  Rng rng(99);
  TextTable table({"colluders-at-b", "trials", "b-reached", "detected",
                   "success-rate"});
  for (const std::size_t colluders : {1u, 2u, 4u, 8u}) {
    std::size_t b_reached = 0, detected = 0, ran = 0;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      // Random trust edge (a, b) where b has enough other neighbors
      // to host the colluders.
      const auto a = static_cast<graph::NodeId>(
          rng.uniform_u64(trust.num_nodes()));
      if (trust.degree(a) == 0) continue;
      const auto a_nbrs = trust.neighbors(a);
      const auto b = a_nbrs[rng.uniform_u64(a_nbrs.size())];
      std::vector<graph::NodeId> observers;
      for (const auto nb : trust.neighbors(b))
        if (nb != a) observers.push_back(nb);
      if (observers.size() < colluders) continue;
      observers = rng.sample(observers, colluders);
      ++ran;

      // n plants a marker (registered so it behaves like a real
      // pseudonym) into a's cache only.
      const auto marker = service.mint_pseudonym(a, 30.0);
      service.node(a).inject_cache_record(marker);

      sim.run_until(sim.now() + window);
      if (!service.node(b).cache().contains(marker.value)) continue;
      ++b_reached;

      sim.run_until(sim.now() + window);
      for (const auto o : observers) {
        if (service.node(o).cache().contains(marker.value)) {
          ++detected;
          break;
        }
      }
    }
    table.add_row({std::to_string(colluders), std::to_string(ran),
                   std::to_string(b_reached), std::to_string(detected),
                   ran == 0 ? "-" : TextTable::num(
                       static_cast<double>(detected) /
                       static_cast<double>(ran), 3)});
  }
  table.print(std::cout);
  std::cout << "\n(detection requires the full n -> a -> b -> o_i relay "
               "within two windows of " << window << " sp each)\n";
  return 0;
}
