// Table I reproduction: the default system parameters, plus the
// properties of the sampled trust graphs the evaluation uses (§IV-A
// reports 5649 edges at f = 1.0 and 3277 at f = 0.5 for 1000 nodes;
// our synthetic substitute should land in the same range with the
// same ordering).
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "experiments/scenario.hpp"
#include "graph/articulation.hpp"
#include "graph/clustering.hpp"
#include "graph/components.hpp"
#include "graph/paths.hpp"
#include "graph/spectral.hpp"
#include "overlay/params.hpp"

int main(int argc, char** argv) {
  using namespace ppo;
  const Cli cli(argc, argv);
  bench::apply_logging(cli);
  experiments::Workbench bench(bench::workbench_options(cli));
  bench::print_header("Table I", "default system parameters & trust graphs",
                      bench);

  const overlay::OverlayParams params;
  const experiments::ChurnSpec churn;
  TextTable defaults({"parameter", "default"});
  defaults.add_row({"number of nodes in trust graph",
                    std::to_string(bench.options().trust_nodes)});
  defaults.add_row({"trust-graph sampling parameter (f)", "0.5"});
  defaults.add_row({"mean offline time (Toff)",
                    TextTable::num(churn.mean_offline) + " sp"});
  defaults.add_row({"pseudonym lifetime",
                    TextTable::num(params.pseudonym_lifetime) + " sp (3 x Toff)"});
  defaults.add_row({"size of pseudonym cache",
                    std::to_string(params.cache_size)});
  defaults.add_row({"pseudonyms per shuffle (l)",
                    std::to_string(params.shuffle_length)});
  defaults.add_row({"target overlay links per node",
                    std::to_string(params.target_links)});
  defaults.print(std::cout);
  std::cout << '\n';

  TextTable stats({"f", "nodes", "edges", "avg degree", "clustering",
                   "avg path len", "diameter~", "spectral gap",
                   "cut vertices", "connected"});
  for (const double f : {1.0, 0.5, 0.0}) {
    const graph::Graph& g = bench.trust_graph(f);
    Rng rng(1);
    stats.add_row({TextTable::num(f), std::to_string(g.num_nodes()),
                   std::to_string(g.num_edges()),
                   TextTable::num(g.average_degree(), 2),
                   TextTable::num(graph::average_clustering(g), 3),
                   TextTable::num(graph::average_path_length(g, rng), 2),
                   std::to_string(graph::diameter_estimate(g, rng)),
                   TextTable::num(graph::spectral_gap(g, rng), 3),
                   // §III-E exposure: each cut vertex is a one-node
                   // vertex cut an observer could exploit.
                   std::to_string(graph::articulation_points(g).size()),
                   graph::is_connected(g) ? "yes" : "no"});
  }
  stats.print(std::cout);
  std::cout << "\npaper reference: f=1.0 -> 5649 edges, f=0.5 -> 3277 edges "
               "(1000-node Facebook samples).\n"
               "expected shape: edges(f=1.0) > edges(f=0.5); both connected; "
               "power-law degrees; high clustering.\n";
  return 0;
}
