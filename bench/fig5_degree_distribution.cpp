// Figure 5 reproduction: degree distribution (number of online nodes
// per degree value) at alpha = 0.5 for the trust graph, the overlay
// and the random reference, for f = 1.0 and f = 0.5.
//
// Expected shape (paper §V-A): the overlay shifts the trust graph's
// distribution far to the right, close to the random graph but less
// concentrated because skewed trust links remain.
//
// --jobs N runs the per-f cells in parallel (bit-identical output for
// any N); --json <path> writes the machine-readable report.
#include <iostream>

#include "bench_common.hpp"
#include "common/histogram.hpp"

namespace {

/// Bins a sparse degree histogram into fixed-width buckets so the
/// three series print on one grid.
std::vector<double> binned(const ppo::Histogram& h, std::size_t max_degree,
                           std::size_t bin_width) {
  std::vector<double> out(max_degree / bin_width + 1, 0.0);
  for (const auto& [degree, count] : h.bins()) {
    const std::size_t bin = std::min(degree / bin_width, out.size() - 1);
    out[bin] += static_cast<double>(count);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ppo;
  const Cli cli(argc, argv);
  bench::apply_logging(cli);
  experiments::Workbench bench(bench::workbench_options(cli));
  bench::print_header("Figure 5", "degree distributions at alpha = 0.5",
                      bench);

  const auto scale = bench::figure_scale(cli);
  const bench::WallTimer timer;
  const auto fig = experiments::degree_distributions(bench, scale);
  const double wall = timer.seconds();
  const std::size_t bin_width =
      static_cast<std::size_t>(cli.get_int("bin-width", 5));

  for (const auto& entry : fig.entries) {
    std::size_t max_degree = 0;
    for (const Histogram* h : {&entry.trust, &entry.overlay, &entry.random})
      if (!h->empty()) max_degree = std::max(max_degree, h->max_value());

    std::vector<double> xs;
    for (std::size_t d = 0; d <= max_degree / bin_width; ++d)
      xs.push_back(static_cast<double>(d * bin_width));

    print_series_table(
        std::cout,
        "number of nodes per degree bin, f = " + TextTable::num(entry.f),
        "degree>=",
        xs,
        {Series{"trust-graph", binned(entry.trust, max_degree, bin_width)},
         Series{"overlay", binned(entry.overlay, max_degree, bin_width)},
         Series{"random", binned(entry.random, max_degree, bin_width)}},
        0);
    std::cout << "means: trust=" << TextTable::num(entry.trust.mean(), 2)
              << " overlay=" << TextTable::num(entry.overlay.mean(), 2)
              << " random=" << TextTable::num(entry.random.mean(), 2)
              << "\n\n";
  }
  bench::write_json_report(cli, "fig5_degree_distribution", bench, scale,
                           experiments::to_json(fig), wall);
  return 0;
}
