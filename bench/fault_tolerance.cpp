// Fault-tolerance study (robustness extension, no paper counterpart):
// the maintained overlay (f = 0.5) under injected per-message loss,
// swept over loss rate x availability alpha, with and without the
// shuffle retry machinery (timeout / bounded retransmit / exponential
// backoff).
//
// Expected shape: without retries, connectivity falls off a cliff as
// loss grows — every lost request or response silently cancels an
// exchange. With retries, the overlay holds its near-zero
// disconnected fraction up to ~20% loss at moderate availability, at
// the cost of extra request traffic (reported in the health block).
//
// --losses L1,L2,...  injected drop probabilities  (default 0.1,0.2,0.3,0.5)
// --timeout T         shuffle timeout in periods   (default 0.25)
// --retries N         max retransmissions          (default 2)
// --backoff B         timeout multiplier per retry (default 2)
// --jobs N runs the per-alpha cells in parallel (bit-identical output
// for any N); --json <path> writes the machine-readable report.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ppo;
  const Cli cli(argc, argv);
  bench::apply_logging(cli);
  experiments::Workbench bench(bench::workbench_options(cli));
  bench::print_header("Fault tolerance",
                      "overlay connectivity under injected message loss",
                      bench);

  const auto scale = bench::figure_scale(cli);
  experiments::FaultToleranceSpec spec;
  if (cli.has("losses")) {
    const auto losses = bench::parse_double_list(cli.get_string("losses", ""));
    if (!losses.empty()) spec.loss_rates = losses;
  }
  spec.shuffle_timeout = cli.get_double("timeout", spec.shuffle_timeout);
  spec.max_retries =
      static_cast<std::size_t>(cli.get_int("retries",
          static_cast<std::int64_t>(spec.max_retries)));
  spec.retry_backoff = cli.get_double("backoff", spec.retry_backoff);

  bench::TraceSession trace(cli);
  trace.warn_if_parallel(scale.jobs == 0 ? runner::default_jobs() : scale.jobs);
  const bench::WallTimer timer;
  const auto fig = experiments::fault_tolerance_sweep(bench, scale, spec);
  const double wall = timer.seconds();
  trace.finish("fault_tolerance");

  print_series_table(std::cout,
                     "fraction of disconnected nodes vs availability",
                     "alpha", fig.alphas, fig.connectivity);
  std::cout << "\n";
  print_series_table(std::cout, "normalized average path length",
                     "alpha", fig.alphas, fig.napl);
  std::cout << "\n";
  print_series_table(std::cout, "shuffle-exchange completion rate",
                     "alpha", fig.alphas, fig.completion);

  TextTable health({"series", "requests", "retries", "timeouts", "aborted",
                    "stale", "completion", "delivery"});
  for (std::size_t i = 0; i < fig.health.size(); ++i) {
    const auto& h = fig.health[i];
    health.add_row({fig.connectivity[i].name, std::to_string(h.requests_sent),
                    std::to_string(h.request_retries),
                    std::to_string(h.request_timeouts),
                    std::to_string(h.exchanges_aborted),
                    std::to_string(h.stale_responses),
                    TextTable::num(h.completion_rate()),
                    TextTable::num(h.delivery_rate())});
  }
  std::cout << "\n# degradation accounting (summed over alphas)\n";
  health.print(std::cout);

  const auto metrics = experiments::collect_metrics(fig);
  bench::write_json_report(cli, "fault_tolerance", bench, scale,
                           experiments::to_json(fig), wall, &metrics);
  return 0;
}
