// Link-privacy study (§III, the privacy axis): a passive observer
// taps the shuffle traffic of the maintained overlay (f = 0.5) and
// runs the src/inference attacks — pseudonym-lifetime linking,
// common-neighbor overlap, timing correlation — to reconstruct the
// hidden trust graph. Reports precision/recall/AUC against ground
// truth per (pseudonym lifetime, observer coverage) cell, with the
// PR 5 defenses off ("open") and on ("defended").
//
// Expected shape: reconstruction quality rises with pseudonym
// lifetime (stable pseudonyms let the attacker accumulate evidence)
// and with observer coverage; the paper's privacy argument is that
// short lifetimes bound what a passive observer can link. The report
// also carries two determinism cross-checks: zero-coverage observer
// bit-identical to no observer, and identical inference fingerprints
// for every sharded backend K.
//
// --lifetimes L1,L2,...  pseudonym lifetimes      (default 10,30,90)
// --coverages C1,C2,...  observer coverages       (default 0.25,1)
// --alpha A              availability             (default 0.9)
// --rate-limit N         defended-arm per-peer request cap (default 8)
// --rate-window W        rate window in periods   (default 10)
// --no-defended          skip the defended arm (halves the work)
// --link-window W        lifetime-linking window  (default 5)
// --timing-bucket W      timing-attack bucket     (default 10)
// --kinv-shards K1,...   K-invariance shard list  (default 1,2,4)
// --jobs N runs cells in parallel (bit-identical output for any N);
// --json <path> writes the machine-readable report.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "experiments/link_privacy.hpp"

namespace {

std::string fixed3(double x) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", x);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ppo;
  const Cli cli(argc, argv);
  bench::apply_logging(cli);
  experiments::Workbench bench(bench::workbench_options(cli));
  bench::print_header("Link privacy",
                      "trust-edge reconstruction by a passive observer",
                      bench);

  const auto scale = bench::figure_scale(cli);
  experiments::LinkPrivacySpec spec;
  if (cli.has("lifetimes")) {
    const auto lifetimes =
        bench::parse_double_list(cli.get_string("lifetimes", ""));
    if (!lifetimes.empty()) spec.lifetimes = lifetimes;
  }
  if (cli.has("coverages")) {
    const auto coverages =
        bench::parse_double_list(cli.get_string("coverages", ""));
    if (!coverages.empty()) spec.coverages = coverages;
  }
  spec.alpha = cli.get_double("alpha", spec.alpha);
  spec.peer_rate_limit = static_cast<std::size_t>(cli.get_int(
      "rate-limit", static_cast<std::int64_t>(spec.peer_rate_limit)));
  spec.peer_rate_window = cli.get_double("rate-window", spec.peer_rate_window);
  spec.defended_arm = !cli.get_bool("no-defended", false);
  spec.attack_options.link_window =
      cli.get_double("link-window", spec.attack_options.link_window);
  spec.attack_options.timing_bucket =
      cli.get_double("timing-bucket", spec.attack_options.timing_bucket);
  if (cli.has("kinv-shards")) {
    spec.kinvariance_shards.clear();
    for (const double k :
         bench::parse_double_list(cli.get_string("kinv-shards", "")))
      if (k >= 1.0) spec.kinvariance_shards.push_back(
          static_cast<std::size_t>(k));
  }

  bench::TraceSession trace(cli);
  trace.warn_if_parallel(scale.jobs == 0 ? runner::default_jobs()
                                         : scale.jobs);
  const bench::WallTimer timer;
  const auto fig = experiments::link_privacy_sweep(bench, scale, spec);
  const double wall = timer.seconds();
  trace.finish("link_privacy");

  TextTable table({"lifetime", "coverage", "attack", "arm", "precision",
                   "recall", "auc", "observations", "entities"});
  for (const auto& cell : fig.cells) {
    table.add_row({fixed3(cell.lifetime), fixed3(cell.coverage), cell.attack,
                   cell.defended ? "defended" : "open",
                   fixed3(cell.precision), fixed3(cell.recall),
                   fixed3(cell.auc), std::to_string(
                       static_cast<std::uint64_t>(cell.observations)),
                   std::to_string(
                       static_cast<std::uint64_t>(cell.entities))});
  }
  std::cout << "# trust-edge reconstruction vs ground truth ("
            << fig.true_edges << " true edges, " << fig.replicas
            << " replica(s))\n";
  table.print(std::cout);

  std::cout << "\nzero-observer cross-check: "
            << (fig.zero_observer_identical ? "IDENTICAL" : "DIVERGED")
            << "\n";
  std::cout << "inference K-invariance (shards";
  for (const auto& fp : fig.shard_fingerprints)
    std::cout << " " << fp.shards;
  std::cout << "): " << (fig.kinvariant ? "IDENTICAL" : "DIVERGED") << "\n";

  const auto metrics = experiments::collect_metrics(fig);
  bench::write_json_report(cli, "link_privacy", bench, scale,
                           experiments::to_json(fig), wall, &metrics);
  return 0;
}
