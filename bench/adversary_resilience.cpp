// Byzantine-resilience study (robustness extension, no paper
// counterpart): the maintained overlay (f = 0.5) under seeded
// attacker populations — cache polluters, eclipse attackers,
// selective droppers, replayers — swept over the attacker fraction,
// with the protocol defenses (merge validation, per-peer rate
// limiting, sampler slot-churn damping) off ("-open") and on
// ("-defended").
//
// Expected shape: graceful monotone degradation as the attacker
// fraction grows, with the defended arm dominating the open arm from
// ~10% attackers on. The health block separates what the adversary
// injected (attack_*) from what the defenses absorbed (defense_*).
// The report also carries the zero-adversary cross-check: a plan with
// every fraction at zero must be bit-identical to no plan at all.
//
// --fractions F1,F2,...  attacker fractions    (default 0,0.05,0.1,0.2,0.3)
// --attacks a,b,...      attack mixes          (default pollute,eclipse,
//                        replay,mixed; also: drop)
// --alpha A              availability          (default 0.75)
// --rate-limit N         defended-arm per-peer request cap   (default 8)
// --rate-window W        rate window in periods              (default 10)
// --min-dwell D          defended-arm sampler dwell          (default 0:
//                        damping shields attacker occupancy too, so it
//                        costs more completion than it saves)
// --timeout T            shuffle timeout, both arms          (default 0.25)
// --retries N            max retransmissions, both arms      (default 1)
// --jobs N runs the per-fraction cells in parallel (bit-identical
// output for any N); --json <path> writes the machine-readable report.
#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "experiments/adversary_study.hpp"

namespace {

std::vector<std::string> parse_name_list(const std::string& csv) {
  std::vector<std::string> names;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) names.push_back(item);
  return names;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ppo;
  const Cli cli(argc, argv);
  bench::apply_logging(cli);
  experiments::Workbench bench(bench::workbench_options(cli));
  bench::print_header("Adversary resilience",
                      "overlay degradation under Byzantine attacker mixes",
                      bench);

  const auto scale = bench::figure_scale(cli);
  experiments::AdversarySpec spec;
  if (cli.has("fractions")) {
    const auto fractions =
        bench::parse_double_list(cli.get_string("fractions", ""));
    if (!fractions.empty()) spec.fractions = fractions;
  }
  if (cli.has("attacks")) {
    const auto attacks = parse_name_list(cli.get_string("attacks", ""));
    if (!attacks.empty()) spec.attacks = attacks;
  }
  spec.alpha = cli.get_double("alpha", spec.alpha);
  spec.peer_rate_limit = static_cast<std::size_t>(cli.get_int(
      "rate-limit", static_cast<std::int64_t>(spec.peer_rate_limit)));
  spec.peer_rate_window = cli.get_double("rate-window", spec.peer_rate_window);
  spec.sampler_min_dwell = cli.get_double("min-dwell", spec.sampler_min_dwell);
  spec.shuffle_timeout = cli.get_double("timeout", spec.shuffle_timeout);
  spec.max_retries = static_cast<std::size_t>(
      cli.get_int("retries", static_cast<std::int64_t>(spec.max_retries)));

  bench::TraceSession trace(cli);
  trace.warn_if_parallel(scale.jobs == 0 ? runner::default_jobs() : scale.jobs);
  const bench::WallTimer timer;
  const auto fig = experiments::adversary_resilience_sweep(bench, scale, spec);
  const double wall = timer.seconds();
  trace.finish("adversary_resilience");

  print_series_table(std::cout,
                     "fraction of disconnected nodes vs attacker fraction",
                     "fraction", fig.fractions, fig.connectivity);
  std::cout << "\n";
  print_series_table(std::cout, "honest shuffle-exchange completion rate",
                     "fraction", fig.fractions, fig.completion);

  TextTable health({"series", "forged", "replays", "eclipse", "suppressed",
                    "rejected", "rate-limited", "damped", "eclipsed-slots"});
  for (std::size_t i = 0; i < fig.health.size(); ++i) {
    const auto& h = fig.health[i];
    health.add_row({fig.connectivity[i].name,
                    std::to_string(h.forged_injected),
                    std::to_string(h.replays_injected),
                    std::to_string(h.eclipse_records_injected),
                    std::to_string(h.responses_suppressed),
                    std::to_string(h.forged_rejected),
                    std::to_string(h.requests_rate_limited),
                    std::to_string(h.displacements_damped),
                    std::to_string(h.slots_eclipsed)});
  }
  std::cout << "\n# attack / defense accounting (summed over fractions > 0)\n";
  health.print(std::cout);
  std::cout << "\nzero-adversary cross-check: "
            << (fig.zero_adversary_identical ? "IDENTICAL" : "DIVERGED")
            << "\n";

  const auto metrics = experiments::collect_metrics(fig);
  bench::write_json_report(cli, "adversary_resilience", bench, scale,
                           experiments::to_json(fig), wall, &metrics);
  return 0;
}
