// Substrate study: the DHT-backed pseudonym service of §III-B.
// Reports Chord lookup cost (hops ~ log2 n) across ring sizes and
// registration survival under storage-node failures at different
// replication factors.
#include <iostream>

#include <cmath>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "dht/chord.hpp"
#include "dht/dht_pseudonym_service.hpp"

int main(int argc, char** argv) {
  using namespace ppo;
  const Cli cli(argc, argv);
  bench::apply_logging(cli);
  std::cout << "==============================================================\n"
               "Substrate — DHT-backed pseudonym service (paper §III-B)\n"
               "==============================================================\n\n";

  TextTable hops_table({"ring size", "mean hops", "max hops", "log2(n)"});
  for (const std::size_t n : {16u, 64u, 256u, 1024u, 4096u}) {
    Rng rng(1);
    dht::ChordRing ring({.num_nodes = n}, rng);
    Rng keys(2);
    RunningStats hops;
    for (int trial = 0; trial < 400; ++trial) {
      const auto res =
          ring.lookup(keys.next_u64(), keys.uniform_u64(n));
      if (res.ok) hops.add(static_cast<double>(res.hops));
    }
    hops_table.add_row({std::to_string(n), TextTable::num(hops.mean(), 2),
                        TextTable::num(hops.max(), 0),
                        TextTable::num(std::log2(static_cast<double>(n)), 1)});
  }
  hops_table.print(std::cout);

  std::cout << "\nregistration survival under storage failures "
               "(ring 128, 200 pseudonyms):\n";
  TextTable surv({"replication", "failed 10%", "failed 25%", "failed 50%"});
  for (const std::size_t repl : {1u, 2u, 4u}) {
    std::vector<std::string> row{std::to_string(repl)};
    for (const double failure : {0.10, 0.25, 0.50}) {
      Rng rng(3);
      dht::ChordRing ring({.num_nodes = 128, .replication = repl}, rng);
      dht::DhtPseudonymService service(ring);
      Rng prng(4);
      std::vector<dht::PseudonymRecord> records;
      for (dht::NodeId owner = 0; owner < 200; ++owner)
        records.push_back(service.create(owner, 0.0, 1000.0, prng));
      Rng pick(5);
      const auto to_kill = static_cast<std::size_t>(failure * 128);
      for (std::size_t k = 0; k < to_kill; ++k)
        ring.fail_node(pick.uniform_u64(128));
      std::size_t alive = 0;
      for (dht::NodeId owner = 0; owner < 200; ++owner)
        alive += (service.resolve(records[owner].value, 1.0) ==
                  std::optional<dht::NodeId>(owner));
      row.push_back(TextTable::num(static_cast<double>(alive) / 200.0, 3));
    }
    surv.add_row(std::move(row));
  }
  surv.print(std::cout);
  std::cout << "\nexpected: hops grow ~log2(n); replication >= 3 keeps "
               "(nearly) all registrations resolvable at 25% failures.\n";
  return 0;
}
