// Substrate study: the DHT-backed pseudonym service of §III-B.
// Reports Chord lookup cost (hops ~ log2 n) across ring sizes and
// registration survival under storage-node failures at different
// replication factors.
//
// --ring-sizes N1,N2,...  lookup rings            (default 16,...,4096)
// --trials T              lookups per ring        (default 400)
// --survival-ring N       survival-study ring     (default 128)
// --pseudonyms P          registrations           (default 200)
// --replications R1,...   replication factors     (default 1,2,4)
// --failures F1,...       failed-node fractions   (default 0.1,0.25,0.5)
// --jobs N runs the grid cells in parallel (bit-identical output for
// any N); --json <path> writes the machine-readable report.
#include <iostream>

#include <cmath>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "dht/chord.hpp"
#include "dht/dht_pseudonym_service.hpp"

int main(int argc, char** argv) {
  using namespace ppo;
  const Cli cli(argc, argv);
  bench::apply_logging(cli);
  experiments::Workbench bench(bench::workbench_options(cli));
  std::cout << "==============================================================\n"
               "Substrate — DHT-backed pseudonym service (paper §III-B)\n"
               "==============================================================\n\n";

  std::vector<std::size_t> ring_sizes{16, 64, 256, 1024, 4096};
  if (cli.has("ring-sizes")) {
    ring_sizes.clear();
    for (const double n : bench::parse_double_list(
             cli.get_string("ring-sizes", "")))
      ring_sizes.push_back(static_cast<std::size_t>(n));
  }
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 400));
  const auto survival_ring =
      static_cast<std::size_t>(cli.get_int("survival-ring", 128));
  const auto pseudonyms =
      static_cast<std::size_t>(cli.get_int("pseudonyms", 200));
  std::vector<std::size_t> replications{1, 2, 4};
  if (cli.has("replications")) {
    replications.clear();
    for (const double r : bench::parse_double_list(
             cli.get_string("replications", "")))
      replications.push_back(static_cast<std::size_t>(r));
  }
  std::vector<double> failures{0.10, 0.25, 0.50};
  if (cli.has("failures")) {
    const auto f = bench::parse_double_list(cli.get_string("failures", ""));
    if (!f.empty()) failures = f;
  }

  const auto scale = bench::figure_scale(cli);
  runner::SweepOptions opt;
  opt.jobs = scale.jobs;
  opt.root_seed = scale.seed;
  opt.progress = scale.progress;
  opt.label = "dht-pseudonym-service";

  // One flat grid: the first |ring_sizes| cells measure lookup cost,
  // the rest one (replication, failure) survival combination each.
  struct CellOut {
    double mean_hops = 0.0;
    double max_hops = 0.0;
    double alive_fraction = 0.0;
  };
  const std::size_t survival_cells = replications.size() * failures.size();
  bench::TraceSession trace(cli);
  trace.warn_if_parallel(scale.jobs == 0 ? runner::default_jobs() : scale.jobs);
  const bench::WallTimer timer;
  auto grid = runner::run_grid(
      ring_sizes.size() + survival_cells, opt,
      [&](const runner::CellInfo& cell) {
        CellOut out;
        if (cell.index < ring_sizes.size()) {
          const std::size_t n = ring_sizes[cell.index];
          Rng rng(derive_seed(cell.seed, 1));
          dht::ChordRing ring({.num_nodes = n}, rng);
          Rng keys(derive_seed(cell.seed, 2));
          RunningStats hops;
          for (std::size_t trial = 0; trial < trials; ++trial) {
            const auto res = ring.lookup(keys.next_u64(), keys.uniform_u64(n));
            if (res.ok) hops.add(static_cast<double>(res.hops));
          }
          out.mean_hops = hops.mean();
          out.max_hops = hops.max();
          return out;
        }
        const std::size_t s = cell.index - ring_sizes.size();
        const std::size_t repl = replications[s / failures.size()];
        const double failure = failures[s % failures.size()];
        Rng rng(derive_seed(cell.seed, 3));
        dht::ChordRing ring(
            {.num_nodes = survival_ring, .replication = repl}, rng);
        dht::DhtPseudonymService service(ring);
        Rng prng(derive_seed(cell.seed, 4));
        std::vector<dht::PseudonymRecord> records;
        for (dht::NodeId owner = 0; owner < pseudonyms; ++owner)
          records.push_back(service.create(owner, 0.0, 1000.0, prng));
        Rng pick(derive_seed(cell.seed, 5));
        const auto to_kill =
            static_cast<std::size_t>(failure *
                                     static_cast<double>(survival_ring));
        for (std::size_t k = 0; k < to_kill; ++k)
          ring.fail_node(pick.uniform_u64(survival_ring));
        std::size_t alive = 0;
        for (dht::NodeId owner = 0; owner < pseudonyms; ++owner)
          alive += (service.resolve(records[owner].value, 1.0) ==
                    std::optional<dht::NodeId>(owner));
        out.alive_fraction =
            static_cast<double>(alive) / static_cast<double>(pseudonyms);
        return out;
      });
  const double wall = timer.seconds();
  trace.finish("dht_pseudonym_service");

  TextTable hops_table({"ring size", "mean hops", "max hops", "log2(n)"});
  Series mean_hops{"mean-hops", {}}, max_hops{"max-hops", {}};
  for (std::size_t i = 0; i < ring_sizes.size(); ++i) {
    const auto& c = grid.cells[i];
    mean_hops.values.push_back(c.mean_hops);
    max_hops.values.push_back(c.max_hops);
    hops_table.add_row(
        {std::to_string(ring_sizes[i]), TextTable::num(c.mean_hops, 2),
         TextTable::num(c.max_hops, 0),
         TextTable::num(std::log2(static_cast<double>(ring_sizes[i])), 1)});
  }
  hops_table.print(std::cout);

  std::cout << "\nregistration survival under storage failures (ring "
            << survival_ring << ", " << pseudonyms << " pseudonyms):\n";
  std::vector<std::string> surv_header{"replication"};
  for (const double failure : failures) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "failed %.0f%%", failure * 100.0);
    surv_header.push_back(buf);
  }
  TextTable surv(surv_header);
  std::vector<Series> survival;
  for (std::size_t r = 0; r < replications.size(); ++r) {
    std::vector<std::string> row{std::to_string(replications[r])};
    Series series{"repl-" + std::to_string(replications[r]), {}};
    for (std::size_t f = 0; f < failures.size(); ++f) {
      const auto& c = grid.cells[ring_sizes.size() + r * failures.size() + f];
      series.values.push_back(c.alive_fraction);
      row.push_back(TextTable::num(c.alive_fraction, 3));
    }
    surv.add_row(std::move(row));
    survival.push_back(std::move(series));
  }
  surv.print(std::cout);
  std::cout << "\nexpected: hops grow ~log2(n); replication >= 3 keeps "
               "(nearly) all registrations resolvable at 25% failures.\n";

  runner::Json fig = runner::Json::object();
  {
    std::vector<double> sizes;
    for (const std::size_t n : ring_sizes)
      sizes.push_back(static_cast<double>(n));
    fig["ring_sizes"] = runner::Json::array_of(sizes);
  }
  runner::Json hop_series = runner::Json::array();
  hop_series.push_back(experiments::to_json(mean_hops));
  hop_series.push_back(experiments::to_json(max_hops));
  fig["lookup_hops"] = std::move(hop_series);
  fig["failures"] = runner::Json::array_of(failures);
  runner::Json surv_series = runner::Json::array();
  for (const auto& series : survival)
    surv_series.push_back(experiments::to_json(series));
  fig["survival"] = std::move(surv_series);
  fig["telemetry"] = experiments::to_json(grid.telemetry);
  bench::write_json_report(cli, "dht_pseudonym_service", bench, scale,
                           std::move(fig), wall);
  return 0;
}
