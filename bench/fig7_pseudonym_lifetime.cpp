// Figure 7 reproduction: connectivity vs availability for pseudonym
// lifetime ratios r = lifetime / Toff in {1, 3, 9, infinity}, against
// the trust-graph and random baselines (f = 0.5).
//
// Expected shape (paper §V-B): larger r -> more robust; r >= 9 tracks
// the random graph; r = 3 degrades at alpha = 0.125; r = 1 already
// degrades at 0.25 and behaves trust-graph-like at low alpha.
//
// --jobs N runs the per-alpha cells in parallel (bit-identical output
// for any N); --json <path> writes the machine-readable report.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ppo;
  const Cli cli(argc, argv);
  bench::apply_logging(cli);
  experiments::Workbench bench(bench::workbench_options(cli));
  bench::print_header("Figure 7",
                      "connectivity for different pseudonym lifetimes (f = 0.5)",
                      bench);

  const auto scale = bench::figure_scale(cli);
  bench::TraceSession trace(cli);
  trace.warn_if_parallel(scale.jobs == 0 ? runner::default_jobs() : scale.jobs);
  const bench::WallTimer timer;
  const auto fig = experiments::lifetime_sweep(bench, scale);
  const double wall = timer.seconds();
  trace.finish("fig7_pseudonym_lifetime");

  print_series_table(std::cout,
                     "fraction of disconnected nodes vs availability",
                     "alpha", fig.alphas, fig.connectivity);
  print_series_table(std::cout,
                     "normalized average path length vs availability "
                     "(companion data, not a separate paper figure)",
                     "alpha", fig.alphas, fig.napl, 2);
  const auto metrics = experiments::collect_metrics(fig);
  bench::write_json_report(cli, "fig7_pseudonym_lifetime", bench, scale,
                           experiments::to_json(fig), wall, &metrics);
  return 0;
}
