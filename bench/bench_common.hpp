// Shared scaffolding for the figure-reproduction benches: CLI → scale
// knobs, workbench construction, and uniform header printing. Every
// flag can also come from the environment as PPO_<FLAG> (see Cli), so
// `PPO_BASE_NODES=8000 ./fig3_connectivity` scales a run down without
// editing commands.
#pragma once

#include <iostream>
#include <string>

#include "common/cli.hpp"
#include "common/logging.hpp"
#include "experiments/figures.hpp"
#include "experiments/workbench.hpp"

namespace ppo::bench {

inline experiments::WorkbenchOptions workbench_options(const Cli& cli) {
  experiments::WorkbenchOptions opts;
  opts.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  opts.social.num_nodes =
      static_cast<std::size_t>(cli.get_int("base-nodes", 50'000));
  opts.trust_nodes = static_cast<std::size_t>(cli.get_int("nodes", 1000));
  return opts;
}

inline experiments::FigureScale figure_scale(const Cli& cli) {
  experiments::FigureScale scale;
  scale.window.warmup = cli.get_double("warmup", 300.0);
  scale.window.measure = cli.get_double("measure", 50.0);
  scale.window.sample_every = cli.get_double("sample-every", 10.0);
  scale.window.apl_sources =
      static_cast<std::size_t>(cli.get_int("apl-sources", 48));
  scale.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  return scale;
}

inline void apply_logging(const Cli& cli) {
  set_log_level(parse_log_level(cli.get_string("log", "warn")));
}

/// Prints the bench banner: which paper artefact this reproduces and
/// the effective scale.
inline void print_header(const std::string& artefact,
                         const std::string& description,
                         const experiments::Workbench& bench) {
  std::cout << "==============================================================\n"
            << artefact << " — " << description << "\n"
            << "trust graphs: " << bench.options().trust_nodes
            << " nodes sampled from a " << bench.options().social.num_nodes
            << "-node synthetic social graph (seed "
            << bench.options().seed << ")\n"
            << "==============================================================\n\n";
}

}  // namespace ppo::bench
