// Shared scaffolding for the figure-reproduction benches: CLI → scale
// knobs, workbench construction, uniform header printing, and the
// machine-readable `--json <path>` report every figure bench emits.
// Every flag can also come from the environment as PPO_<FLAG> (see
// Cli), so `PPO_BASE_NODES=8000 ./fig3_connectivity` scales a run down
// without editing commands.
//
// Parallelism: `--jobs N` sets the sweep worker count (default 0 =
// hardware concurrency); results are bit-identical for any N. Add
// `--progress` for per-cell completion/ETA lines on stderr.
#pragma once

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "common/cli.hpp"
#include "common/logging.hpp"
#include "experiments/figure_json.hpp"
#include "experiments/figures.hpp"
#include "experiments/workbench.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "runner/json.hpp"

namespace ppo::bench {

inline experiments::WorkbenchOptions workbench_options(const Cli& cli) {
  experiments::WorkbenchOptions opts;
  opts.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  opts.social.num_nodes =
      static_cast<std::size_t>(cli.get_int("base-nodes", 50'000));
  // Community structure must shrink with the base graph (the generator
  // requires num_nodes >= 2 x community size), so reduced-scale CI
  // runs can dial these down alongside --base-nodes.
  opts.social.sub_community_size = static_cast<std::size_t>(cli.get_int(
      "sub-community", static_cast<std::int64_t>(opts.social.sub_community_size)));
  opts.social.community_size = static_cast<std::size_t>(cli.get_int(
      "community", static_cast<std::int64_t>(opts.social.community_size)));
  opts.trust_nodes = static_cast<std::size_t>(cli.get_int("nodes", 1000));
  return opts;
}

/// Parses a comma-separated list of doubles, e.g. --alphas=0.25,0.5,1.
inline std::vector<double> parse_double_list(const std::string& text) {
  std::vector<double> out;
  std::istringstream in(text);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (token.empty()) continue;
    std::size_t used = 0;
    double value = 0.0;
    try {
      value = std::stod(token, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used != token.size()) {
      std::cerr << "not a number in comma-separated list: '" << token << "'\n";
      std::exit(2);
    }
    out.push_back(value);
  }
  return out;
}

inline experiments::FigureScale figure_scale(const Cli& cli) {
  experiments::FigureScale scale;
  scale.window.warmup = cli.get_double("warmup", 300.0);
  scale.window.measure = cli.get_double("measure", 50.0);
  scale.window.sample_every = cli.get_double("sample-every", 10.0);
  scale.window.apl_sources =
      static_cast<std::size_t>(cli.get_int("apl-sources", 48));
  scale.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  scale.jobs = static_cast<std::size_t>(cli.get_int("jobs", 0));
  scale.progress = cli.get_bool("progress", false);
  scale.shards = static_cast<std::size_t>(cli.get_int("shards", 0));
  scale.replicas = static_cast<std::size_t>(cli.get_int("replicas", 1));
  scale.warm_start_dir = cli.get_string("warm-start-dir", "");
  if (cli.has("alphas")) {
    const auto alphas = parse_double_list(cli.get_string("alphas", ""));
    if (!alphas.empty()) scale.alphas = alphas;
  }
  return scale;
}

inline void apply_logging(const Cli& cli) {
  set_log_level(parse_log_level(cli.get_string("log", "warn")));
}

/// `--trace=<cats>` (or PPO_TRACE) session for a bench run: owns the
/// tracer, installs it on construction when any category is enabled,
/// and exports Chrome-trace + JSONL artefacts on finish(). Categories:
/// all, none, or a comma list of sim/shard/shuffle/pseudonym/
/// transport/churn/log/user/adversary/inference/dht/routing.
///
/// `--trace-stream <path>` switches to streaming mode: records are
/// flushed to <path> as JSONL whenever a buffer fills (nothing is ever
/// dropped; lines arrive in flush order, not canonical order), and
/// finish() drains the remainder instead of writing the usual
/// artefacts. `--trace-buffer N` overrides the per-thread buffer
/// capacity (records).
class TraceSession {
 public:
  explicit TraceSession(const Cli& cli) {
    const std::string spec = cli.get_string("trace", "");
    std::uint32_t mask = 0;
    try {
      mask = obs::parse_trace_categories(spec);
    } catch (const std::exception& e) {
      std::cerr << e.what()
                << " (expected all/none or a comma list of sim,shard,"
                   "shuffle,pseudonym,transport,churn,log,user,adversary,"
                   "inference,dht,routing)\n";
      std::exit(2);
    }
    if (mask == obs::kTraceNone) return;
    const auto capacity = static_cast<std::size_t>(
        cli.get_int("trace-buffer", std::int64_t{1} << 22));
    const std::string stream_path = cli.get_string("trace-stream", "");
    if (!stream_path.empty())
      sink_ = std::make_unique<obs::JsonlStreamSink>(stream_path);
    tracer_ = std::make_unique<obs::Tracer>(capacity, sink_.get());
    obs::install_tracer(tracer_.get(), mask);
  }

  ~TraceSession() {
    if (tracer_ != nullptr) obs::uninstall_tracer();
  }

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  bool active() const { return tracer_ != nullptr; }

  /// Parallel sweep cells interleave their records into one trace;
  /// still valid (records carry sim-time and origin) but confusing to
  /// eyeball. Nudge towards --jobs 1 for per-run traces.
  void warn_if_parallel(std::size_t jobs) const {
    if (active() && jobs != 1)
      std::cerr << "note: tracing a parallel sweep (--jobs != 1) merges "
                   "all cells into one trace; use --jobs 1 for a "
                   "per-cell-ordered timeline\n";
  }

  /// Uninstalls the tracer and writes `<stem>.trace.json` (Chrome
  /// trace_event, for chrome://tracing / Perfetto) and
  /// `<stem>.trace.jsonl` — or, in streaming mode, drains the
  /// remaining records into the stream file. No-op when tracing is
  /// off.
  void finish(const std::string& stem) {
    if (tracer_ == nullptr) return;
    obs::uninstall_tracer();
    if (sink_ != nullptr) {
      tracer_->flush_to_sink();
      const std::uint64_t lines = sink_->lines_written();
      sink_->close();
      std::cout << "streamed trace: " << lines << " records ("
                << tracer_->records_recorded() << " recorded, 0 dropped)\n";
      tracer_.reset();
      sink_.reset();
      return;
    }
    const auto records = tracer_->merged();
    const std::string chrome_path = stem + ".trace.json";
    const std::string jsonl_path = stem + ".trace.jsonl";
    obs::write_file(chrome_path, obs::chrome_trace_json(records));
    obs::write_file(jsonl_path, obs::trace_jsonl(records));
    std::cout << "wrote trace: " << chrome_path << " (+ .jsonl), "
              << records.size() << " records";
    if (tracer_->records_dropped() > 0)
      std::cout << ", " << tracer_->records_dropped()
                << " dropped at buffer capacity";
    std::cout << "\n";
    tracer_.reset();
  }

 private:
  std::unique_ptr<obs::JsonlStreamSink> sink_;  // streaming mode only
  std::unique_ptr<obs::Tracer> tracer_;
};

/// Prints the bench banner: which paper artefact this reproduces and
/// the effective scale.
inline void print_header(const std::string& artefact,
                         const std::string& description,
                         const experiments::Workbench& bench) {
  std::cout << "==============================================================\n"
            << artefact << " — " << description << "\n"
            << "trust graphs: " << bench.options().trust_nodes
            << " nodes sampled from a " << bench.options().social.num_nodes
            << "-node synthetic social graph (seed "
            << bench.options().seed << ")\n"
            << "==============================================================\n\n";
}

/// Process-wide peak resident set size in bytes (0 when the platform
/// has no getrusage). Monotone over the process lifetime: a reading
/// after run N covers everything up to and including run N, so
/// per-configuration deltas need one process per configuration.
/// Linux reports ru_maxrss in KiB, macOS in bytes.
inline std::size_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::size_t>(usage.ru_maxrss);
#else
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;
#endif
#else
  return 0;
#endif
}

/// Wall-clock timer for the figure computation a bench reports.
class WallTimer {
 public:
  double seconds() const {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

/// When `--json <path>` was given, wraps `figure` (the figure payload,
/// typically experiments::to_json(fig)) in the common envelope —
/// artefact name, schema version, workbench + scale knobs, root seed,
/// resolved job count and total wall time — and writes it to the path.
/// Returns true if a file was written.
inline bool write_json_report(const Cli& cli, const std::string& artefact,
                              const experiments::Workbench& bench,
                              const experiments::FigureScale& scale,
                              runner::Json figure, double wall_seconds,
                              const obs::MetricsRegistry* metrics = nullptr) {
  if (!cli.has("json")) return false;
  const std::string path = cli.get_string("json", "");
  if (path.empty()) {
    std::cerr << "--json needs a path\n";
    std::exit(2);
  }
  runner::Json doc = runner::Json::object();
  doc["artefact"] = artefact;
  doc["schema_version"] =
      static_cast<std::int64_t>(experiments::kFigureJsonSchemaVersion);
  doc["workbench"] = experiments::to_json(bench.options());
  doc["scale"] = experiments::to_json(scale);
  doc["seed"] = scale.seed;
  doc["jobs"] = static_cast<std::uint64_t>(
      scale.jobs == 0 ? runner::default_jobs() : scale.jobs);
  doc["wall_seconds"] = wall_seconds;
  doc["peak_rss_bytes"] = static_cast<std::uint64_t>(peak_rss_bytes());
  // Warm-start accounting (DESIGN.md §13): present whenever any
  // overlay run this process was armed with --warm-start-dir, so the
  // bench_diff history ledger can tell forked sweeps from cold ones.
  const experiments::WarmStartStats warm = experiments::warm_start_stats();
  if (warm.warm_runs + warm.cold_runs > 0) {
    runner::Json w = runner::Json::object();
    w["warm_runs"] = warm.warm_runs;
    w["cold_runs"] = warm.cold_runs;
    w["warm_seconds"] = warm.warm_seconds;
    w["cold_seconds"] = warm.cold_seconds;
    doc["warm_start"] = std::move(w);
  }
  if (metrics != nullptr && !metrics->empty())
    doc["metrics"] = obs::to_json(*metrics);
  doc["figure"] = std::move(figure);

  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write --json file: " << path << "\n";
    std::exit(1);
  }
  out << doc.dump(2) << "\n";
  std::cout << "wrote JSON report: " << path << "\n";
  return true;
}

}  // namespace ppo::bench
