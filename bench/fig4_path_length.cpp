// Figure 4 reproduction: normalized average path length (APL in the
// largest component / component size * total nodes, §IV-C) vs
// availability, for the same series as Figure 3.
//
// Expected shape (paper §V-A): the overlay closely tracks the random
// graph for all availabilities; the trust graphs sit above it and
// explode (fragment-dominated) at low alpha.
//
// --jobs N runs the per-alpha cells in parallel (bit-identical output
// for any N); --json <path> writes the machine-readable report.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ppo;
  const Cli cli(argc, argv);
  bench::apply_logging(cli);
  experiments::Workbench bench(bench::workbench_options(cli));
  bench::print_header("Figure 4",
                      "normalized average path length for different trust graphs",
                      bench);

  const auto scale = bench::figure_scale(cli);
  bench::TraceSession trace(cli);
  trace.warn_if_parallel(scale.jobs == 0 ? runner::default_jobs() : scale.jobs);
  const bench::WallTimer timer;
  const auto fig = experiments::availability_sweep(bench, scale);
  const double wall = timer.seconds();
  trace.finish("fig4_path_length");

  print_series_table(std::cout,
                     "normalized average path length vs availability",
                     "alpha", fig.alphas, fig.napl, 2);
  const auto metrics = experiments::collect_metrics(fig);
  bench::write_json_report(cli, "fig4_path_length", bench, scale,
                           experiments::to_json(fig), wall, &metrics);
  return 0;
}
