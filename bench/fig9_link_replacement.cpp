// Figure 9 reproduction: pseudonym links replaced per (online) node
// per shuffling period over time, at alpha = 0.25 (f = 0.5), for
// r in {3, 9, infinity}.
//
// Expected shape (paper §V-B): r = infinity converges to ~0 once the
// best links are found; r = 3 sustains the highest steady replacement
// rate; r = 9 sits in between and shows a decaying oscillation early
// on (synchronized expiry of the pseudonyms minted at start-up).
//
// --jobs N runs the three traces in parallel (bit-identical output
// for any N); --json <path> writes the machine-readable report.
#include <iostream>

#include "bench_common.hpp"
#include "metrics/timeseries.hpp"

int main(int argc, char** argv) {
  using namespace ppo;
  const Cli cli(argc, argv);
  bench::apply_logging(cli);
  experiments::Workbench bench(bench::workbench_options(cli));
  bench::print_header("Figure 9",
                      "link replacements per node per shuffle period, "
                      "alpha = 0.25 (f = 0.5)",
                      bench);

  const double horizon = cli.get_double("horizon", 10'000.0);
  const double sample_every = cli.get_double("sample-every", 100.0);
  const auto scale = bench::figure_scale(cli);

  const bench::WallTimer timer;
  const auto fig = experiments::replacement_trace(bench, horizon, sample_every,
                                                  scale.seed, scale.jobs);
  const double wall = timer.seconds();

  metrics::print_time_series(
      std::cout,
      "pseudonym links replaced per node per shuffle period over time",
      {fig.r3, fig.r9, fig.r_infinite}, 3);
  bench::write_json_report(cli, "fig9_link_replacement", bench, scale,
                           experiments::to_json(fig), wall);
  return 0;
}
