// Figure 3 reproduction: fraction of disconnected (online) nodes vs
// average availability alpha, for the bare trust graphs (f = 1.0 and
// 0.5), the maintained overlay on both, and the Erdős–Rényi reference.
//
// Expected shape (paper §V-A): trust graphs degrade sharply as alpha
// drops; the overlay stays near zero down to alpha ~ 0.25 (f = 1.0
// even at 0.125); the random graph stays near zero everywhere.
//
// --jobs N runs the per-alpha cells in parallel (bit-identical output
// for any N); --json <path> writes the machine-readable report.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ppo;
  const Cli cli(argc, argv);
  bench::apply_logging(cli);
  experiments::Workbench bench(bench::workbench_options(cli));
  bench::print_header("Figure 3",
                      "connectivity under churn for different trust graphs",
                      bench);

  const auto scale = bench::figure_scale(cli);
  bench::TraceSession trace(cli);
  trace.warn_if_parallel(scale.jobs == 0 ? runner::default_jobs() : scale.jobs);
  const bench::WallTimer timer;
  const auto fig = experiments::availability_sweep(bench, scale);
  const double wall = timer.seconds();
  trace.finish("fig3_connectivity");

  print_series_table(std::cout,
                     "fraction of disconnected nodes vs availability",
                     "alpha", fig.alphas, fig.connectivity);
  const auto metrics = experiments::collect_metrics(fig);
  bench::write_json_report(cli, "fig3_connectivity", bench, scale,
                           experiments::to_json(fig), wall, &metrics);
  return 0;
}
