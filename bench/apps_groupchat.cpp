// Application workload (the paper's §II motivating apps): a group
// chat running on top of the maintained overlay under churn. Posts
// flood eagerly to the online population; members who were offline
// catch up through periodic anti-entropy when they rejoin.
//
// Reported: delivery latency to the concurrently-online population,
// eventual replication (including members offline at publish time),
// and message cost, across availabilities.
#include <iostream>

#include "apps/groupchat.hpp"
#include "bench_common.hpp"
#include "experiments/scenario.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace ppo;
  const Cli cli(argc, argv);
  bench::apply_logging(cli);
  experiments::Workbench bench(bench::workbench_options(cli));
  bench::print_header("Application", "group chat over the overlay under churn",
                      bench);

  const graph::Graph& trust = bench.trust_graph(0.5);
  const auto posts = static_cast<std::size_t>(cli.get_int("posts", 40));

  TextTable table({"alpha", "posts", "mean latency", "p95-ish (max)",
                   "replication@+150sp", "msgs/post/member",
                   "anti-entropy exchanges"});
  for (const double alpha : {0.25, 0.5, 0.75}) {
    sim::Simulator sim;
    experiments::ChurnSpec churn;
    churn.alpha = alpha;
    const auto model = churn.make();
    overlay::OverlayService service(sim, trust, *model, {},
                                    Rng(7 ^ static_cast<std::uint64_t>(alpha * 512)));
    apps::GroupChat chat(sim, service, {}, Rng(11));
    service.start();
    chat.start();
    sim.run_until(300.0);  // overlay converged

    Rng rng(13);
    std::vector<std::pair<graph::NodeId, std::uint32_t>> ids;
    for (std::size_t p = 0; p < posts; ++p) {
      graph::NodeId author;
      do {
        author = static_cast<graph::NodeId>(
            rng.uniform_u64(trust.num_nodes()));
      } while (!service.is_online(author));
      ids.push_back(chat.publish(author, "post"));
      sim.run_until(sim.now() + 2.0);
    }
    sim.run_until(sim.now() + 150.0);  // catch-up window

    RunningStats replication;
    for (const auto& [author, seq] : ids)
      replication.add(chat.replication(author, seq));

    const double msgs_per_post_member =
        static_cast<double>(chat.messages_sent()) /
        static_cast<double>(posts) /
        static_cast<double>(trust.num_nodes());
    table.add_row({TextTable::num(alpha), std::to_string(posts),
                   TextTable::num(chat.delivery_latency().mean(), 3),
                   TextTable::num(chat.delivery_latency().max(), 2),
                   TextTable::num(replication.mean(), 3),
                   TextTable::num(msgs_per_post_member, 2),
                   std::to_string(chat.anti_entropy_exchanges())});
  }
  table.print(std::cout);
  std::cout << "\n(replication counts ALL members, incl. those offline at "
               "publish time — anti-entropy back-fills them on rejoin)\n";
  return 0;
}
