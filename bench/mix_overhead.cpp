// Full-stack study: the overlay-maintenance protocol running over the
// REAL mix network (per-message onion circuits, X25519 + AEAD layers)
// vs the ideal link layer the paper's evaluation assumes. Small scale
// by necessity — every shuffle message costs circuit_hops X25519
// exchanges — but it demonstrates that the protocol's behaviour is
// preserved and quantifies the anonymity layer's price.
#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "churn/churn_model.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "overlay/service.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace ppo;
  const Cli cli(argc, argv);
  bench::apply_logging(cli);
  const auto nodes = static_cast<std::size_t>(cli.get_int("mix-nodes", 50));
  const double horizon = cli.get_double("mix-horizon", 35.0);

  std::cout << "==============================================================\n"
               "Full stack — overlay maintenance over real onion circuits\n"
               "(" << nodes << " nodes, " << horizon << " shuffle periods, "
               "alpha = 0.75)\n"
               "==============================================================\n\n";

  Rng grng(5);
  const graph::Graph trust = graph::barabasi_albert(nodes, 2, grng);
  const auto model = churn::ExponentialChurn::from_availability(0.75, 30.0);

  TextTable table({"link layer", "disconnected", "overlay edges",
                   "msgs sent", "delivered", "relay fwds", "wall time (s)"});
  for (const bool use_mix : {false, true}) {
    overlay::OverlayServiceOptions options;
    options.params.target_links = 12;
    options.params.cache_size = 60;
    options.params.shuffle_length = 8;
    options.use_mix_network = use_mix;
    options.mix.num_relays = 12;
    options.mix_transport.circuit_hops = 3;

    sim::Simulator sim;
    overlay::OverlayService service(sim, trust, model, options, Rng(9));
    service.start();
    const auto t0 = std::chrono::steady_clock::now();
    sim.run_until(horizon);
    const auto t1 = std::chrono::steady_clock::now();

    graph::Graph snapshot = service.overlay_snapshot();
    table.add_row(
        {use_mix ? "mix network (3-hop onion)" : "ideal (paper §IV)",
         TextTable::num(graph::fraction_disconnected(
             snapshot, service.online_mask()), 3),
         std::to_string(snapshot.num_edges()),
         std::to_string(service.transport().messages_sent()),
         std::to_string(service.transport().messages_delivered()),
         use_mix ? std::to_string(service.mix_network()->messages_forwarded())
                 : "-",
         TextTable::num(std::chrono::duration<double>(t1 - t0).count(), 2)});
  }
  table.print(std::cout);
  std::cout << "\nexpected: both modes build an overlay of similar shape; "
               "the mix mode pays ~3 relay forwards per message and real "
               "crypto per layer.\n";
  return 0;
}
