// Long-running service mode: a sustained overlay workload with the
// live telemetry plane attached. Unlike the figure benches (fixed
// horizon, report at the end), this runs until --horizon sim periods
// OR --wall-limit wall seconds — whichever comes first — while
// exporting live state:
//
//   /metrics   Prometheus text exposition (curl-able while running)
//   /samples   the most recent wall-clock samples, as JSONL
//   /healthz   liveness probe
//   --telemetry-out <path>   every sample appended as one JSONL line
//
// Workload arms (all optional, composable): --loss (link faults),
// --adversary + --attack [+ --defended] (Byzantine roles), --observer
// (passive link-privacy observer).
//
// Determinism: for a fixed --horizon, the trajectory fingerprint is
// bit-identical with telemetry on or off (the plane is read-only and
// wall-clock-side); --wall-limit runs end wherever the wall says, so
// their fingerprints are only comparable to themselves.
//
// Examples:
//   service_mode --horizon 50 --shards 4 --telemetry-port 9464
//   service_mode --wall-limit 30 --loss 0.05 --adversary 0.1
//                --attack mixed --defended --telemetry-out ts.jsonl
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "telemetry/prometheus.hpp"
#include "telemetry/service_mode.hpp"

int main(int argc, char** argv) {
  using namespace ppo;
  const Cli cli(argc, argv);
  bench::apply_logging(cli);

  telemetry::ServiceModeOptions opt;
  opt.nodes = static_cast<std::size_t>(cli.get_int("nodes", 5000));
  opt.alpha = cli.get_double("alpha", 0.5);
  opt.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  opt.shards = static_cast<std::size_t>(cli.get_int("shards", 4));
  opt.horizon = cli.get_double("horizon", 0.0);
  opt.wall_limit_seconds = cli.get_double("wall-limit", 0.0);
  opt.slice = cli.get_double("slice", 1.0);
  opt.loss = cli.get_double("loss", 0.0);
  opt.adversary_fraction = cli.get_double("adversary", 0.0);
  opt.adversary_attack = cli.get_string("attack", "mixed");
  opt.defended = cli.get_bool("defended", false);
  opt.observer_coverage = cli.get_double("observer", 0.0);
  opt.cache_size = static_cast<std::size_t>(cli.get_int("cache", 50));
  opt.shuffle_length =
      static_cast<std::size_t>(cli.get_int("shuffle-length", 10));
  opt.target_links =
      static_cast<std::size_t>(cli.get_int("target-links", 20));
  opt.profile = cli.get_bool("profile", opt.shards > 0);
  opt.port = static_cast<int>(cli.get_int("telemetry-port", -1));
  opt.telemetry_out = cli.get_string("telemetry-out", "");
  opt.sample_interval_seconds = cli.get_double("sample-interval", 1.0);
  opt.ring_capacity =
      static_cast<std::size_t>(cli.get_int("ring-capacity", 600));
  opt.checkpoint_every = cli.get_double("checkpoint-every", 0.0);
  opt.checkpoint_dir = cli.get_string("checkpoint-dir", "");
  opt.resume = cli.get_bool("resume", false);
  // The service binary always drains gracefully on SIGINT/SIGTERM:
  // finish the slice, snapshot (when --checkpoint-dir is set), flush
  // the telemetry ring tail, exit 0.
  opt.handle_signals = true;

  if (opt.horizon <= 0.0 && opt.wall_limit_seconds <= 0.0) {
    std::cerr << "service_mode needs --horizon <periods> and/or "
                 "--wall-limit <seconds>\n";
    return 2;
  }
  if (opt.checkpoint_every > 0.0 && opt.checkpoint_dir.empty()) {
    std::cerr << "--checkpoint-every needs --checkpoint-dir <dir>\n";
    return 2;
  }
  if (opt.resume && opt.checkpoint_dir.empty()) {
    std::cerr << "--resume needs --checkpoint-dir <dir>\n";
    return 2;
  }

  std::cout << "==============================================================\n"
            << "service_mode — sustained overlay workload with live telemetry\n"
            << opt.nodes << " nodes, alpha " << opt.alpha << ", K="
            << opt.shards << (opt.shards == 0 ? " (serial)" : "") << ", seed "
            << opt.seed << "\n";
  if (opt.horizon > 0.0)
    std::cout << "horizon " << opt.horizon << " periods";
  if (opt.wall_limit_seconds > 0.0)
    std::cout << (opt.horizon > 0.0 ? ", " : "") << "wall limit "
              << opt.wall_limit_seconds << " s";
  std::cout << "\narms: loss " << opt.loss << ", adversary "
            << opt.adversary_fraction << " (" << opt.adversary_attack
            << (opt.defended ? ", defended" : ", open") << "), observer "
            << opt.observer_coverage << "\n"
            << "==============================================================\n";

  const telemetry::ServiceModeReport report =
      telemetry::run_service_mode(opt);

  for (const std::string& rejected : report.rejected_checkpoints)
    std::cerr << "checkpoint rejected: " << rejected << "\n";
  if (opt.resume) {
    if (report.resumed)
      std::cout << "resumed from checkpoint at sim time "
                << report.resumed_at << "\n";
    else
      std::cout << "no usable checkpoint; cold start\n";
  }
  if (report.checkpoints_written > 0)
    std::cout << "wrote " << report.checkpoints_written
              << " checkpoint(s) -> " << opt.checkpoint_dir << "\n";
  if (report.interrupted)
    std::cout << "drained on signal at sim time " << report.sim_time << "\n";

  if (report.port != 0)
    std::cout << "telemetry: served " << report.scrapes_served
              << " scrapes on port " << report.port << "\n";
  if (report.samples_taken > 0)
    std::cout << "telemetry: " << report.samples_taken << " samples"
              << (opt.telemetry_out.empty()
                      ? ""
                      : " -> " + opt.telemetry_out)
              << "\n";

  const std::size_t cores = opt.shards == 0 ? 1 : opt.shards;
  const double eps = report.wall_seconds > 0.0
                         ? static_cast<double>(report.events) /
                               report.wall_seconds
                         : 0.0;
  std::cout << "\nstopped at sim time " << report.sim_time << " ("
            << (report.horizon_reached
                    ? "horizon"
                    : (report.interrupted ? "signal" : "wall limit"))
            << "), "
            << report.wall_seconds << " s wall\n"
            << report.events << " events, " << eps << " events/s, "
            << eps / static_cast<double>(cores) << " events/s/core\n"
            << "fingerprint " << std::hex << report.fingerprint << std::dec
            << "\noverlay: " << report.overlay_edges << " edges, "
            << report.online << " online, fraction_disconnected "
            << report.fraction_disconnected << "\n"
            << "health: completion " << report.health.completion_rate()
            << ", honest completion "
            << report.health.honest_completion_rate() << ", delivery "
            << report.health.delivery_rate() << "\n";
  if (!report.shard_stats.empty() && opt.profile) {
    std::cout << "  shard  events      busy_s   stall_s  busy_ratio\n";
    for (std::size_t s = 0; s < report.shard_stats.size(); ++s) {
      const auto& st = report.shard_stats[s];
      const double denom = st.busy_seconds + st.stall_seconds;
      std::printf("  %-6zu %-11llu %-8.3f %-8.3f %-8.3f\n", s,
                  static_cast<unsigned long long>(st.events),
                  st.busy_seconds, st.stall_seconds,
                  denom > 0.0 ? st.busy_seconds / denom : 0.0);
    }
  }

  if (cli.has("json")) {
    const std::string path = cli.get_string("json", "");
    if (path.empty()) {
      std::cerr << "--json needs a path\n";
      return 2;
    }
    runner::Json doc = runner::Json::object();
    doc["artefact"] = std::string("service_mode");
    doc["schema_version"] =
        static_cast<std::int64_t>(experiments::kFigureJsonSchemaVersion);
    doc["nodes"] = static_cast<std::uint64_t>(opt.nodes);
    doc["alpha"] = opt.alpha;
    doc["seed"] = opt.seed;
    doc["shards"] = static_cast<std::uint64_t>(opt.shards);
    doc["horizon"] = opt.horizon;
    doc["wall_limit_seconds"] = opt.wall_limit_seconds;
    doc["horizon_reached"] = report.horizon_reached;
    doc["sim_time"] = report.sim_time;
    doc["wall_seconds"] = report.wall_seconds;
    doc["events"] = report.events;
    doc["events_per_second"] = eps;
    doc["events_per_second_per_core"] = eps / static_cast<double>(cores);
    doc["fingerprint"] = report.fingerprint;
    doc["online"] = static_cast<std::uint64_t>(report.online);
    doc["overlay_edges"] = static_cast<std::uint64_t>(report.overlay_edges);
    doc["fraction_disconnected"] = report.fraction_disconnected;
    doc["peak_rss_bytes"] =
        static_cast<std::uint64_t>(report.peak_rss_bytes);
    doc["node_state_bytes"] =
        static_cast<std::uint64_t>(report.node_state_bytes);
    doc["health"] = experiments::to_json(report.health);
    doc["telemetry_port"] = static_cast<std::int64_t>(report.port);
    doc["scrapes_served"] = report.scrapes_served;
    doc["samples_taken"] = report.samples_taken;
    doc["resumed"] = report.resumed;
    doc["resumed_at"] = report.resumed_at;
    doc["checkpoints_written"] = report.checkpoints_written;
    doc["interrupted"] = report.interrupted;
    doc["metrics"] = obs::to_json(report.metrics);
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write --json file: " << path << "\n";
      return 1;
    }
    out << doc.dump(2) << "\n";
    std::cout << "wrote JSON report: " << path << "\n";
  }
  return 0;
}
