// google-benchmark micro-benchmarks for the substrate primitives the
// simulation hot path and the mix network rely on.
#include <benchmark/benchmark.h>

#include "common/flat_map.hpp"
#include "common/rng.hpp"
#include "crypto/aead.hpp"
#include "crypto/sha256.hpp"
#include "crypto/x25519.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/paths.hpp"
#include "overlay/cache.hpp"
#include "overlay/sampler.hpp"
#include "privacylink/onion.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace ppo;

void BM_RngNextU64(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_u64());
}
BENCHMARK(BM_RngNextU64);

void BM_RngUniformBounded(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.uniform_u64(1000));
}
BENCHMARK(BM_RngUniformBounded);

void BM_FlatMapFind(benchmark::State& state) {
  FlatMap64 map(400);
  Rng rng(2);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 400; ++i) {
    keys.push_back(rng.next_u64());
    map.insert(keys.back(), static_cast<std::uint32_t>(i));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.find(keys[i++ & 255]));
  }
}
BENCHMARK(BM_FlatMapFind);

void BM_FlatMapInsertErase(benchmark::State& state) {
  FlatMap64 map(512);
  Rng rng(3);
  for (auto _ : state) {
    const std::uint64_t k = rng.next_u64();
    map.insert(k, 1);
    map.erase(k);
  }
}
BENCHMARK(BM_FlatMapInsertErase);

void BM_GraphBfs(benchmark::State& state) {
  Rng rng(4);
  const graph::Graph g =
      graph::erdos_renyi_gnm(1000, 25'000, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(graph::bfs_distances(g, 0));
}
BENCHMARK(BM_GraphBfs);

void BM_ConnectedComponents(benchmark::State& state) {
  Rng rng(5);
  const graph::Graph g = graph::erdos_renyi_gnm(1000, 25'000, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(graph::connected_components(g).largest_size());
}
BENCHMARK(BM_ConnectedComponents);

void BM_SamplerOfferBatch(benchmark::State& state) {
  Rng rng(6);
  overlay::SlotSampler sampler(45, 64, rng);
  std::vector<overlay::PseudonymRecord> batch;
  for (int i = 0; i < 40; ++i)
    batch.push_back({rng.next_u64(), 1000.0});
  for (auto _ : state) {
    for (const auto& r : batch) sampler.offer(r, 1.0);
    benchmark::DoNotOptimize(sampler.live_slots(1.0));
  }
}
BENCHMARK(BM_SamplerOfferBatch);

void BM_CacheMergeBatch(benchmark::State& state) {
  Rng rng(7);
  overlay::PseudonymCache cache(400);
  std::vector<overlay::PseudonymRecord> fill;
  for (int i = 0; i < 400; ++i) fill.push_back({rng.next_u64(), 1000.0});
  cache.merge(fill, 0, {}, 0.0, rng);
  for (auto _ : state) {
    std::vector<overlay::PseudonymRecord> batch;
    for (int i = 0; i < 40; ++i) batch.push_back({rng.next_u64(), 1000.0});
    const auto sent = cache.select_random(39, 0.0, rng);
    cache.merge(batch, 0, sent, 0.0, rng);
  }
}
BENCHMARK(BM_CacheMergeBatch);

void BM_EventQueueChurn(benchmark::State& state) {
  sim::Simulator sim;
  Rng rng(8);
  for (int i = 0; i < 1000; ++i)
    sim.schedule_at(rng.uniform_double(0.0, 1e7), [] {});
  for (auto _ : state) {
    sim.schedule_at(sim.now() + rng.uniform_double(0.0, 10.0), [] {});
    sim.step();
  }
}
BENCHMARK(BM_EventQueueChurn);

void BM_Sha256(benchmark::State& state) {
  const crypto::Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        crypto::sha256(crypto::BytesView(data.data(), data.size())));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(1024)->Arg(65536);

void BM_ChaCha20(benchmark::State& state) {
  const crypto::ChaChaKey key{};
  const crypto::ChaChaNonce nonce{};
  const crypto::Bytes data(static_cast<std::size_t>(state.range(0)), 0x42);
  for (auto _ : state)
    benchmark::DoNotOptimize(crypto::chacha20_xor(
        key, nonce, 0, crypto::BytesView(data.data(), data.size())));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChaCha20)->Arg(1024)->Arg(65536);

void BM_Poly1305(benchmark::State& state) {
  crypto::PolyKey key{};
  key[0] = 1;
  const crypto::Bytes data(4096, 0x33);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        crypto::poly1305(key, crypto::BytesView(data.data(), data.size())));
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_Poly1305);

void BM_AeadSealOpen(benchmark::State& state) {
  const crypto::ChaChaKey key{};
  const crypto::ChaChaNonce nonce{};
  const crypto::Bytes data(1024, 0x11);
  for (auto _ : state) {
    const auto sealed = crypto::aead_seal(
        key, nonce, {}, crypto::BytesView(data.data(), data.size()));
    benchmark::DoNotOptimize(crypto::aead_open(
        key, nonce, {}, crypto::BytesView(sealed.data(), sealed.size())));
  }
  state.SetBytesProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_AeadSealOpen);

void BM_X25519(benchmark::State& state) {
  crypto::X25519Key scalar{}, point{};
  scalar.fill(0x77);
  point[0] = 9;
  for (auto _ : state) {
    const auto out = crypto::x25519(scalar, point);
    benchmark::DoNotOptimize(out);
    scalar[0] = out[0];  // chain to defeat caching
  }
}
BENCHMARK(BM_X25519);

void BM_OnionWrapUnwrap3(benchmark::State& state) {
  Rng rng(9);
  std::vector<crypto::X25519KeyPair> relays;
  for (int i = 0; i < 3; ++i) {
    crypto::X25519Key seed{};
    seed.fill(static_cast<std::uint8_t>(i + 1));
    relays.push_back(crypto::x25519_keypair(seed));
  }
  const crypto::Bytes payload(256, 0x55);
  const std::vector<privacylink::HopSpec> hops = {
      {1, relays[0].public_key},
      {2, relays[1].public_key},
      {privacylink::kFinalHop, relays[2].public_key}};
  for (auto _ : state) {
    auto wrapped = privacylink::onion_wrap(
        hops, crypto::BytesView(payload.data(), payload.size()), rng);
    for (int i = 0; i < 3; ++i) {
      auto layer = privacylink::onion_unwrap(
          relays[static_cast<std::size_t>(i)].private_key,
          crypto::BytesView(wrapped.data(), wrapped.size()));
      wrapped = std::move(layer->inner);
    }
    benchmark::DoNotOptimize(wrapped);
  }
}
BENCHMARK(BM_OnionWrapUnwrap3);

}  // namespace

BENCHMARK_MAIN();
