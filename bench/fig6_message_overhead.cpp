// Figure 6 reproduction: average messages sent per shuffle period per
// node (while online) and maximum overlay out-degree, nodes ranked by
// their trust-graph degree; alpha = 0.5, f in {1.0, 0.5}.
//
// Expected shape (paper §V-A): network-wide average ~2 messages per
// period (1 request + 1 response); nodes with more overlay neighbors
// (trust-graph hubs) receive and answer more shuffle requests; max
// out-degree ~ max(target, trust degree).
//
// --jobs N runs the per-f cells in parallel (bit-identical output for
// any N); --json <path> writes the machine-readable report.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ppo;
  const Cli cli(argc, argv);
  bench::apply_logging(cli);
  experiments::Workbench bench(bench::workbench_options(cli));
  bench::print_header("Figure 6",
                      "per-node message load by trust-degree rank, alpha = 0.5",
                      bench);

  const auto scale = bench::figure_scale(cli);
  const bench::WallTimer timer;
  const auto fig = experiments::message_overhead(bench, scale);
  const double wall = timer.seconds();

  for (const auto& entry : fig.entries) {
    std::cout << "--- f = " << TextTable::num(entry.f) << " ---\n";
    TextTable table({"rank", "trust-degree", "max-out-degree",
                     "msgs/period"});
    // Log-spaced ranks, mirroring the paper's log-log axes.
    std::size_t rank = 1;
    while (rank <= entry.rows.size()) {
      const auto& row = entry.rows[rank - 1];
      table.add_row({std::to_string(row.rank),
                     std::to_string(row.trust_degree),
                     std::to_string(row.max_out_degree),
                     TextTable::num(row.messages_per_period, 2)});
      rank = std::max(rank + 1, rank * 3 / 2);
    }
    table.print(std::cout);
    std::cout << "network-wide mean messages/period = "
              << TextTable::num(entry.mean_messages, 3)
              << "  (paper: ~2 at alpha=1; lower under churn because "
                 "requests to offline peers get no response)\n\n";
  }
  bench::write_json_report(cli, "fig6_message_overhead", bench, scale,
                           experiments::to_json(fig), wall);
  return 0;
}
