// Application-level dissemination (the paper's motivating workload,
// §I): broadcast coverage, latency and message cost over the bare
// trust graph vs the maintained overlay, under churn, for controlled
// flooding and epidemic (fanout-limited) push.
//
// Expected outcome: on the trust graph at alpha = 0.5 a large part of
// the online population is unreachable; the overlay delivers to
// (nearly) everyone, with lower latency (shorter paths), at the cost
// of more links.
//
// --trials N broadcasts per (graph, protocol) combination (default 20).
// --jobs N runs the per-alpha cells in parallel (bit-identical output
// for any N); --json <path> writes the machine-readable report.
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "dissemination/broadcast.hpp"
#include "experiments/scenario.hpp"
#include "overlay/service.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace ppo;

struct Aggregate {
  RunningStats coverage, latency, messages;
};

/// Broadcasts from `trials` random online sources and aggregates.
Aggregate run_broadcasts(const graph::Graph& g, const graph::NodeMask& online,
                         const dissem::BroadcastOptions& options,
                         std::size_t trials, Rng& rng) {
  Aggregate agg;
  std::vector<graph::NodeId> candidates;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v)
    if (online.contains(v)) candidates.push_back(v);
  for (std::size_t t = 0; t < trials && !candidates.empty(); ++t) {
    const graph::NodeId source =
        candidates[rng.uniform_u64(candidates.size())];
    const auto result = dissem::broadcast(g, online, source, options, rng);
    agg.coverage.add(result.coverage);
    agg.latency.add(result.mean_latency);
    agg.messages.add(static_cast<double>(result.messages_sent));
  }
  return agg;
}

struct ComboResult {
  bool use_overlay = false;
  std::size_t fanout = 0;  // 0 = flood
  Aggregate agg;
};

/// Everything one alpha cell produces: the four (graph x protocol)
/// aggregates plus the overlay run's health rollup.
struct CellResult {
  std::vector<ComboResult> combos;
  metrics::ProtocolHealth health;
};

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  bench::apply_logging(cli);
  experiments::Workbench bench(bench::workbench_options(cli));
  bench::print_header("Dissemination",
                      "broadcast over trust graph vs maintained overlay",
                      bench);

  const auto scale = bench::figure_scale(cli);
  const graph::Graph& trust = bench.trust_graph(0.5);
  const std::size_t trials =
      static_cast<std::size_t>(cli.get_int("trials", 20));
  // This workload sweeps the moderate-availability regime, not the
  // full figure-bench alpha axis; --alphas still overrides.
  std::vector<double> alphas{0.5, 0.75, 1.0};
  if (cli.has("alphas")) {
    const auto parsed = bench::parse_double_list(cli.get_string("alphas", ""));
    if (!parsed.empty()) alphas = parsed;
  }

  bench::TraceSession trace(cli);
  trace.warn_if_parallel(scale.jobs == 0 ? runner::default_jobs() : scale.jobs);

  runner::SweepOptions sweep;
  sweep.jobs = scale.jobs;
  sweep.root_seed = scale.seed;
  sweep.progress = scale.progress;
  sweep.label = "dissemination_broadcast";

  const bench::WallTimer timer;
  auto grid = runner::run_grid(
      alphas, sweep, [&](double alpha, const runner::CellInfo&) {
        // One overlay run provides the graph + churn mask for both
        // protocols; the trust graph is measured under the same mask.
        // The seeds predate the run_grid port (scale.seed xor a
        // per-alpha constant) so output matches the serial bench.
        experiments::OverlayScenario scenario;
        scenario.churn.alpha = alpha;
        scenario.window = scale.window;
        scenario.seed = scale.seed ^ static_cast<std::uint64_t>(alpha * 512);

        sim::Simulator simulator;
        const auto model = scenario.churn.make();
        overlay::OverlayService service(
            simulator, trust,
            *model, {.params = scenario.params, .transport = {}},
            Rng(scenario.seed));
        service.start();
        simulator.run_until(scenario.window.warmup);
        graph::Graph overlay_graph = service.overlay_snapshot();
        const graph::NodeMask& online = service.online_mask();

        CellResult out;
        out.health = service.protocol_health();
        Rng rng(scenario.seed ^ 0xD15);
        for (const bool use_overlay : {false, true}) {
          const graph::Graph& g = use_overlay ? overlay_graph : trust;
          for (const std::size_t fanout : {0u, 4u}) {
            dissem::BroadcastOptions options;
            options.fanout = fanout;
            out.combos.push_back(
                {use_overlay, fanout,
                 run_broadcasts(g, online, options, trials, rng)});
          }
        }
        return out;
      });
  const double wall = timer.seconds();
  trace.finish("dissemination_broadcast");

  TextTable table({"alpha", "graph", "protocol", "coverage", "mean-latency",
                   "messages"});
  for (std::size_t i = 0; i < alphas.size(); ++i) {
    for (const ComboResult& combo : grid.cells[i].combos) {
      table.add_row(
          {TextTable::num(alphas[i]), combo.use_overlay ? "overlay" : "trust",
           combo.fanout == 0 ? "flood" : "epidemic(4)",
           TextTable::num(combo.agg.coverage.mean(), 3),
           TextTable::num(combo.agg.latency.mean(), 3),
           TextTable::num(combo.agg.messages.mean(), 0)});
    }
  }
  table.print(std::cout);

  if (cli.has("json")) {
    const std::string path = cli.get_string("json", "");
    if (path.empty()) {
      std::cerr << "--json needs a path\n";
      return 2;
    }
    obs::MetricsRegistry metrics;
    runner::Json rows = runner::Json::array();
    runner::Json health = runner::Json::array();
    for (std::size_t i = 0; i < alphas.size(); ++i) {
      for (const ComboResult& combo : grid.cells[i].combos) {
        runner::Json row = runner::Json::object();
        row["alpha"] = alphas[i];
        row["graph"] =
            std::string(combo.use_overlay ? "overlay" : "trust");
        row["protocol"] =
            std::string(combo.fanout == 0 ? "flood" : "epidemic(4)");
        row["trials"] = static_cast<std::uint64_t>(combo.agg.coverage.count());
        row["coverage"] = combo.agg.coverage.mean();
        row["coverage_ci"] = ci95_half_width(combo.agg.coverage);
        row["mean_latency"] = combo.agg.latency.mean();
        row["latency_ci"] = ci95_half_width(combo.agg.latency);
        row["messages"] = combo.agg.messages.mean();
        row["messages_ci"] = ci95_half_width(combo.agg.messages);
        rows.push_back(std::move(row));
      }
      runner::Json h = experiments::to_json(grid.cells[i].health);
      h["alpha"] = alphas[i];
      health.push_back(std::move(h));
      experiments::add_health_metrics(
          metrics, grid.cells[i].health,
          {{"alpha", TextTable::num(alphas[i])}});
    }

    runner::Json doc = runner::Json::object();
    doc["artefact"] = std::string("dissemination_broadcast");
    doc["schema_version"] =
        static_cast<std::int64_t>(experiments::kFigureJsonSchemaVersion);
    doc["workbench"] = experiments::to_json(bench.options());
    doc["alphas"] = runner::Json::array_of(alphas);
    doc["trials"] = static_cast<std::uint64_t>(trials);
    doc["seed"] = scale.seed;
    doc["jobs"] = static_cast<std::uint64_t>(
        scale.jobs == 0 ? runner::default_jobs() : scale.jobs);
    doc["wall_seconds"] = wall;
    doc["metrics"] = obs::to_json(metrics);
    doc["rows"] = std::move(rows);
    doc["health"] = std::move(health);
    doc["telemetry"] = experiments::to_json(grid.telemetry);
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write --json file: " << path << "\n";
      return 1;
    }
    out << doc.dump(2) << "\n";
    std::cout << "wrote JSON report: " << path << "\n";
  }
  return 0;
}
