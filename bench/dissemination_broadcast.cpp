// Application-level dissemination (the paper's motivating workload,
// §I): broadcast coverage, latency and message cost over the bare
// trust graph vs the maintained overlay, under churn, for controlled
// flooding and epidemic (fanout-limited) push.
//
// Expected outcome: on the trust graph at alpha = 0.5 a large part of
// the online population is unreachable; the overlay delivers to
// (nearly) everyone, with lower latency (shorter paths), at the cost
// of more links.
#include <iostream>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "dissemination/broadcast.hpp"
#include "experiments/scenario.hpp"
#include "overlay/service.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace ppo;

struct Aggregate {
  RunningStats coverage, latency, messages;
};

/// Broadcasts from `trials` random online sources and aggregates.
Aggregate run_broadcasts(const graph::Graph& g, const graph::NodeMask& online,
                         const dissem::BroadcastOptions& options,
                         std::size_t trials, Rng& rng) {
  Aggregate agg;
  std::vector<graph::NodeId> candidates;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v)
    if (online.contains(v)) candidates.push_back(v);
  for (std::size_t t = 0; t < trials && !candidates.empty(); ++t) {
    const graph::NodeId source =
        candidates[rng.uniform_u64(candidates.size())];
    const auto result = dissem::broadcast(g, online, source, options, rng);
    agg.coverage.add(result.coverage);
    agg.latency.add(result.mean_latency);
    agg.messages.add(static_cast<double>(result.messages_sent));
  }
  return agg;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  bench::apply_logging(cli);
  experiments::Workbench bench(bench::workbench_options(cli));
  bench::print_header("Dissemination",
                      "broadcast over trust graph vs maintained overlay",
                      bench);

  const auto scale = bench::figure_scale(cli);
  const graph::Graph& trust = bench.trust_graph(0.5);
  const std::size_t trials =
      static_cast<std::size_t>(cli.get_int("trials", 20));

  TextTable table({"alpha", "graph", "protocol", "coverage", "mean-latency",
                   "messages"});
  for (const double alpha : {0.5, 0.75, 1.0}) {
    // One overlay run provides the graph + churn mask for both
    // protocols; the trust graph is measured under the same mask.
    experiments::OverlayScenario scenario;
    scenario.churn.alpha = alpha;
    scenario.window = scale.window;
    scenario.seed = scale.seed ^ static_cast<std::uint64_t>(alpha * 512);

    sim::Simulator simulator;
    const auto model = scenario.churn.make();
    overlay::OverlayService service(
        simulator, trust, *model, {.params = scenario.params, .transport = {}},
        Rng(scenario.seed));
    service.start();
    simulator.run_until(scenario.window.warmup);
    graph::Graph overlay_graph = service.overlay_snapshot();
    const graph::NodeMask& online = service.online_mask();

    Rng rng(scenario.seed ^ 0xD15);
    for (const bool use_overlay : {false, true}) {
      const graph::Graph& g = use_overlay ? overlay_graph : trust;
      for (const std::size_t fanout : {0u, 4u}) {
        dissem::BroadcastOptions options;
        options.fanout = fanout;
        const Aggregate agg = run_broadcasts(g, online, options, trials, rng);
        table.add_row(
            {TextTable::num(alpha), use_overlay ? "overlay" : "trust",
             fanout == 0 ? "flood" : "epidemic(4)",
             TextTable::num(agg.coverage.mean(), 3),
             TextTable::num(agg.latency.mean(), 3),
             TextTable::num(agg.messages.mean(), 0)});
      }
    }
  }
  table.print(std::cout);
  return 0;
}
