// Ablation (paper §III-D): the target number of overlay links per
// node "governs the balance between potentially higher overhead and
// better overlay robustness". Sweeps the target at alpha = 0.25.
//
// Expected outcome: connectivity improves rapidly with the target and
// saturates; overlay size (edges -> maintenance traffic) grows
// roughly linearly — the paper's default of 50 sits on the flat part
// of the robustness curve.
#include <iostream>

#include "bench_common.hpp"
#include "common/stats.hpp"

int main(int argc, char** argv) {
  using namespace ppo;
  const Cli cli(argc, argv);
  bench::apply_logging(cli);
  experiments::Workbench bench(bench::workbench_options(cli));
  bench::print_header("Ablation", "sensitivity to target links per node",
                      bench);

  const auto scale = bench::figure_scale(cli);
  const graph::Graph& trust = bench.trust_graph(0.5);

  const std::size_t repeats =
      static_cast<std::size_t>(cli.get_int("repeats", 3));
  TextTable table({"target-links", "disconnected", "norm-APL",
                   "overlay-edges", "replacements"});
  for (const std::size_t target : {5u, 10u, 20u, 30u, 50u, 80u}) {
    RunningStats disc, napl, edges, repl;
    for (std::size_t rep = 0; rep < repeats; ++rep) {
      experiments::OverlayScenario scenario;
      scenario.churn.alpha = 0.25;
      scenario.window = scale.window;
      scenario.seed = scale.seed ^ target ^ (rep * 0x9711);
      scenario.params.target_links = target;
      const auto run = experiments::run_overlay(trust, scenario);
      disc.add(run.stats.frac_disconnected.mean());
      napl.add(run.stats.norm_apl.mean());
      edges.add(run.stats.total_edges.mean());
      repl.add(static_cast<double>(run.replacements));
    }
    table.add_row({std::to_string(target), TextTable::num(disc.mean()),
                   TextTable::num(napl.mean(), 2),
                   TextTable::num(edges.mean(), 0),
                   TextTable::num(repl.mean(), 0)});
  }
  table.print(std::cout);
  return 0;
}
