// Ablation: does the Brahms-style reference-value sampler matter?
// Compares the full protocol against a naive variant that fills empty
// slots with arriving pseudonyms but never applies the closeness rule
// (so link choice follows receive frequency, not a uniform sample).
//
// Expected outcome: similar connectivity at moderate churn (any extra
// links help), but the naive overlay's links are biased toward
// frequently-gossiped pseudonyms — visible as a wider spread of
// in-degrees (popular nodes collect many more links).
#include <iostream>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "graph/degree.hpp"

int main(int argc, char** argv) {
  using namespace ppo;
  const Cli cli(argc, argv);
  bench::apply_logging(cli);
  experiments::Workbench bench(bench::workbench_options(cli));
  bench::print_header("Ablation", "Brahms-style sampling vs naive slot fill",
                      bench);

  const auto scale = bench::figure_scale(cli);
  const graph::Graph& trust = bench.trust_graph(0.5);

  TextTable table({"alpha", "sampler", "disconnected", "norm-APL",
                   "degree-stddev", "replacements"});
  for (const double alpha : {0.25, 0.5, 1.0}) {
    for (const bool naive : {false, true}) {
      experiments::OverlayScenario scenario;
      scenario.churn.alpha = alpha;
      scenario.window = scale.window;
      scenario.seed = scale.seed ^ (naive ? 0x1000 : 0) ^
                      static_cast<std::uint64_t>(alpha * 512);
      scenario.params.naive_sampling = naive;
      const auto run = experiments::run_overlay(trust, scenario);

      RunningStats degree_spread;
      for (const auto& [degree, count] : run.final_degree.bins())
        for (std::size_t i = 0; i < count; ++i)
          degree_spread.add(static_cast<double>(degree));

      table.add_row({TextTable::num(alpha),
                     naive ? "naive" : "brahms",
                     TextTable::num(run.stats.frac_disconnected.mean()),
                     TextTable::num(run.stats.norm_apl.mean(), 2),
                     TextTable::num(degree_spread.stddev(), 2),
                     std::to_string(run.replacements)});
    }
  }
  table.print(std::cout);
  return 0;
}
